/**
 * @file
 * Throughput and latency of `macs serve` (docs/SERVER.md) measured
 * through real loopback sockets.
 *
 * Part 1 — request cost (in-process HTTP client, small client counts):
 *
 *  - SINGLE-SHOT: a fresh server + service is constructed, started,
 *    queried ONCE, and drained per request — the per-invocation cost
 *    a one-shot `macs` process pays on every query (minus exec/link),
 *    which is the serving baseline (docs/SERVER.md).
 *  - COLD: a resident server with the memo cache disabled, at
 *    1 / 4 / 16 concurrent keep-alive clients; every request pays a
 *    full hierarchy analysis — the per-request compute floor.
 *  - WARM: the LRU cache enabled and pre-warmed, so every request is
 *    a cache hit and the measurement isolates HTTP + dispatch.
 *
 * Part 2 — connection scalability (the C10k sweep): 256 / 1024 / 4096
 * concurrent keep-alive connections driven by a single-threaded,
 * poller-based load generator (no thread-per-client: the generator
 * reuses the server's own EventPoller abstraction). Each connection
 * sends a few warm-cache requests separated by a THINK TIME, the
 * realistic interactive pattern where thread-per-session dies: a
 * thinking connection pins a whole session worker doing nothing.
 * At 1024 connections the sweep also measures the legacy threaded
 * core at 16 session workers — the PR-4 configuration — and asserts
 * the evented core sustains >= 5x its RPS with bounded p99 latency
 * (think time excluded from latency; connection starts are staggered
 * so the offered load, not a connect burst, is what is measured).
 *
 * `--json PATH` writes the machine-readable summary consumed by the
 * perf regression gate (scripts/perf_gate.py): RATIO metrics are the
 * gated ones (host-independent); absolute RPS is informative.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "server/client.h"
#include "server/poller.h"
#include "server/server.h"
#include "support/table.h"

namespace {

using namespace macs;
using Clock = std::chrono::steady_clock;

/** The request mix: a small rotating LFK id set. */
const int kIds[] = {1, 2, 3};
constexpr size_t kIdCount = sizeof(kIds) / sizeof(kIds[0]);

std::string
bodyFor(int id)
{
    return "{\"kind\": \"lfk\", \"id\": " + std::to_string(id) + "}";
}

struct Measurement
{
    double rps = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    size_t requests = 0;
    size_t errors = 0;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Measurement
summarize(std::vector<double> &lat_us, double wall_s, size_t errors)
{
    std::sort(lat_us.begin(), lat_us.end());
    Measurement m;
    m.requests = lat_us.size();
    m.errors = errors;
    m.rps = wall_s > 0.0
                ? static_cast<double>(lat_us.size()) / wall_s
                : 0.0;
    m.p50Us = percentile(lat_us, 0.50);
    m.p99Us = percentile(lat_us, 0.99);
    return m;
}

/**
 * Drive @p clients keep-alive connections for @p per_client requests
 * each against the server on @p port and aggregate RPS + latency.
 * Thread-per-client: fine for the small counts of part 1.
 */
Measurement
drive(int port, size_t clients, size_t per_client)
{
    std::vector<std::vector<double>> lat(clients);
    std::atomic<size_t> errors{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);

    Clock::time_point begin = Clock::now();
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            server::HttpClient client("127.0.0.1", port, 30000);
            lat[c].reserve(per_client);
            for (size_t i = 0; i < per_client; ++i) {
                int id = kIds[(c + i) % kIdCount];
                server::ClientResponse resp;
                Clock::time_point t0 = Clock::now();
                bool ok = client.requestWithRetry(
                    "POST", "/v1/analyze", bodyFor(id), resp,
                    /*attempts=*/3, /*backoff_ms=*/5);
                Clock::time_point t1 = Clock::now();
                if (!ok || resp.status != 200) {
                    errors.fetch_add(1);
                    continue;
                }
                lat[c].push_back(
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    double wall_s =
        std::chrono::duration<double>(Clock::now() - begin).count();

    std::vector<double> all;
    for (const auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    return summarize(all, wall_s, errors.load());
}

/** One server lifetime: start, optionally pre-warm, drive, drain. */
Measurement
measure(size_t clients, size_t per_client, bool warm_cache)
{
    obs::Registry registry;
    server::ServerOptions opt;
    opt.workers = clients + 1;
    opt.queueCapacity = 2 * clients + 4;
    opt.requestTimeoutMs = 30000;
    opt.metrics = &registry;
    opt.service.metrics = &registry;
    opt.service.useCache = warm_cache;
    opt.service.cacheCapacity = warm_cache ? 1024 : 0;
    server::Server srv(std::move(opt));
    srv.start();

    if (warm_cache) {
        // Pre-warm: one request per unique id so the measured phase
        // is 100% hits.
        server::HttpClient client("127.0.0.1", srv.port(), 30000);
        for (int id : kIds) {
            server::ClientResponse resp;
            if (!client.request("POST", "/v1/analyze", bodyFor(id),
                                resp) ||
                resp.status != 200)
                std::fprintf(stderr, "warm-up request failed\n");
        }
    }

    Measurement m = drive(srv.port(), clients, per_client);
    srv.drain();
    return m;
}

/**
 * Cold single-shot baseline: each query constructs, starts, and
 * drains its own server with the cache disabled — what a one-shot
 * process invocation pays, minus exec/link.
 */
Measurement
measureSingleShot(size_t n)
{
    std::vector<double> lat;
    lat.reserve(n);
    size_t errors = 0;
    Clock::time_point begin = Clock::now();
    for (size_t i = 0; i < n; ++i) {
        Clock::time_point t0 = Clock::now();
        obs::Registry registry;
        server::ServerOptions opt;
        opt.workers = 1;
        opt.metrics = &registry;
        opt.service.metrics = &registry;
        opt.service.useCache = false;
        server::Server srv(std::move(opt));
        srv.start();
        server::HttpClient client("127.0.0.1", srv.port(), 30000);
        server::ClientResponse resp;
        bool ok = client.request("POST", "/v1/analyze",
                                 bodyFor(kIds[i % kIdCount]), resp);
        srv.drain();
        Clock::time_point t1 = Clock::now();
        if (!ok || resp.status != 200) {
            ++errors;
            continue;
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
    }
    double wall_s =
        std::chrono::duration<double>(Clock::now() - begin).count();
    return summarize(lat, wall_s, errors);
}

/* ------------------------------------------------------------------ */
/* Part 2: the C10k sweep                                             */
/* ------------------------------------------------------------------ */

/** Think time between a connection's requests (the idle the evented
 * core absorbs and the threaded core pays a pinned worker for). */
constexpr int kThinkMs = 100;
/** Requests per connection in the sweep. */
constexpr size_t kPerConn = 2;
/** Per-connection start stagger: keeps the offered load below the
 * single-CPU compute capacity so queueing delay, not an artificial
 * connect burst, is what p99 observes. */
constexpr double kStaggerUsPerConn = 250.0;
/** At most this many TCP connects in flight (listen backlog is 128). */
constexpr size_t kConnectWindow = 96;

/**
 * Single-threaded, poller-based load generator: @p conns keep-alive
 * connections, each sending kPerConn warm-cache requests separated by
 * kThinkMs, started on a stagger grid. Latency is per request, send
 * start to response end — think time never counts. Returns the
 * aggregate; any transport error or non-200 is an error.
 */
Measurement
driveC10k(int port, size_t conns)
{
    struct LoadConn
    {
        int fd = -1;
        enum St
        {
            Unstarted,
            Connecting,
            Think,
            Sending,
            Receiving,
            Done,
            Failed
        } st = Unstarted;
        size_t reqLeft = kPerConn;
        size_t sendOff = 0;
        std::string in;
        size_t headerEnd = std::string::npos;
        size_t bodyLen = 0;
        Clock::time_point thinkUntil{};
        Clock::time_point sendStart{};
    };

    // One canned request per id; connections rotate by index.
    std::vector<std::string> requests;
    for (size_t i = 0; i < kIdCount; ++i) {
        std::string body = bodyFor(kIds[i]);
        requests.push_back(
            "POST /v1/analyze HTTP/1.1\r\nHost: bench\r\n"
            "Content-Type: application/json\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body);
    }

    server::EventPoller poller;
    std::vector<LoadConn> cs(conns);
    std::vector<double> lat_us;
    lat_us.reserve(conns * kPerConn);
    size_t started = 0, inflight_connects = 0, finished = 0,
           errors = 0;

    Clock::time_point begin = Clock::now();

    auto fail = [&](size_t i) {
        LoadConn &c = cs[i];
        if (c.fd >= 0) {
            poller.del(c.fd);
            ::close(c.fd);
            c.fd = -1;
        }
        if (c.st == LoadConn::Connecting)
            --inflight_connects;
        c.st = LoadConn::Failed;
        ++finished;
        ++errors;
    };

    auto beginConnect = [&](size_t i) {
        LoadConn &c = cs[i];
        c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (c.fd < 0 || !server::setNonBlocking(c.fd)) {
            fail(i);
            return;
        }
        int one = 1;
        (void)::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one,
                           sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        int rc = ::connect(
            c.fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
        if (rc != 0 && errno != EINPROGRESS) {
            fail(i);
            return;
        }
        c.st = LoadConn::Connecting;
        ++inflight_connects;
        poller.add(c.fd, /*want_write=*/true,
                   reinterpret_cast<void *>(i + 1));
    };

    // Completing one response: think or finish.
    auto onResponse = [&](size_t i) {
        LoadConn &c = cs[i];
        lat_us.push_back(std::chrono::duration<double, std::micro>(
                             Clock::now() - c.sendStart)
                             .count());
        if (--c.reqLeft == 0) {
            poller.del(c.fd);
            ::close(c.fd);
            c.fd = -1;
            c.st = LoadConn::Done;
            ++finished;
            return;
        }
        c.st = LoadConn::Think;
        c.thinkUntil =
            Clock::now() + std::chrono::milliseconds(kThinkMs);
    };

    auto tryRecv = [&](size_t i) {
        LoadConn &c = cs[i];
        char buf[8192];
        for (;;) {
            ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                c.in.append(buf, static_cast<size_t>(n));
                if (c.headerEnd == std::string::npos) {
                    size_t he = c.in.find("\r\n\r\n");
                    if (he == std::string::npos)
                        continue;
                    c.headerEnd = he + 4;
                    size_t cl = c.in.find("Content-Length: ");
                    if (cl == std::string::npos || cl > he) {
                        fail(i);
                        return;
                    }
                    c.bodyLen = static_cast<size_t>(
                        std::strtoul(c.in.c_str() + cl + 16,
                                     nullptr, 10));
                    if (c.in.compare(0, 12, "HTTP/1.1 200") != 0) {
                        fail(i);
                        return;
                    }
                }
                if (c.in.size() >= c.headerEnd + c.bodyLen) {
                    onResponse(i);
                    return;
                }
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;
            if (n < 0 && errno == EINTR)
                continue;
            fail(i); // EOF mid-response or transport error
            return;
        }
    };

    auto trySend = [&](size_t i) {
        LoadConn &c = cs[i];
        const std::string &req = requests[i % kIdCount];
        while (c.sendOff < req.size()) {
            ssize_t n = ::send(c.fd, req.data() + c.sendOff,
                               req.size() - c.sendOff, MSG_NOSIGNAL);
            if (n > 0) {
                c.sendOff += static_cast<size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                poller.mod(c.fd, /*want_write=*/true,
                           reinterpret_cast<void *>(i + 1));
                return;
            }
            if (n < 0 && errno == EINTR)
                continue;
            fail(i);
            return;
        }
        c.st = LoadConn::Receiving;
        c.in.clear();
        c.headerEnd = std::string::npos;
        poller.mod(c.fd, /*want_write=*/false,
                   reinterpret_cast<void *>(i + 1));
        tryRecv(i); // bytes may already be queued (fast server)
    };

    auto startSend = [&](size_t i) {
        LoadConn &c = cs[i];
        c.st = LoadConn::Sending;
        c.sendOff = 0;
        c.sendStart = Clock::now();
        trySend(i);
    };

    std::vector<server::PollEvent> events;
    Clock::time_point deadline =
        begin + std::chrono::seconds(180); // stuck-run safety net
    while (finished < conns && Clock::now() < deadline) {
        while (started < conns && inflight_connects < kConnectWindow)
            beginConnect(started++);

        (void)poller.wait(events, 5);
        for (const server::PollEvent &e : events) {
            size_t i =
                reinterpret_cast<size_t>(e.data) - 1;
            LoadConn &c = cs[i];
            switch (c.st) {
            case LoadConn::Connecting: {
                if (e.error) {
                    fail(i);
                    break;
                }
                int err = 0;
                socklen_t len = sizeof(err);
                ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
                if (err != 0) {
                    fail(i);
                    break;
                }
                --inflight_connects;
                // First send fires on the stagger grid, not now.
                c.st = LoadConn::Think;
                c.thinkUntil =
                    begin + std::chrono::microseconds(
                                static_cast<long>(
                                    kStaggerUsPerConn *
                                    static_cast<double>(i)));
                poller.mod(c.fd, /*want_write=*/false,
                           reinterpret_cast<void *>(i + 1));
                break;
            }
            case LoadConn::Sending:
                if (e.error)
                    fail(i);
                else
                    trySend(i);
                break;
            case LoadConn::Receiving:
                if (e.error && !e.readable)
                    fail(i);
                else
                    tryRecv(i);
                break;
            case LoadConn::Think:
                // The server must not speak while we think; bytes or
                // EOF here mean it dropped us (e.g. a deadline).
                if (e.readable || e.error) {
                    char b;
                    if (::recv(c.fd, &b, 1, 0) != -1 ||
                        (errno != EAGAIN && errno != EWOULDBLOCK))
                        fail(i);
                }
                break;
            default:
                break;
            }
        }

        Clock::time_point now = Clock::now();
        for (size_t i = 0; i < conns; ++i)
            if (cs[i].st == LoadConn::Think &&
                now >= cs[i].thinkUntil)
                startSend(i);
    }

    for (size_t i = 0; i < conns; ++i)
        if (cs[i].st != LoadConn::Done && cs[i].st != LoadConn::Failed)
            fail(i); // safety-net timeout: count as errors

    // Offered-load wall time: stagger + thinks dominate by design;
    // RPS is still the honest aggregate over the whole run.
    double wall_s =
        std::chrono::duration<double>(Clock::now() - begin).count();
    return summarize(lat_us, wall_s, errors);
}

/** One sweep point: a warm resident server under C10k load. */
Measurement
measureC10k(size_t conns, server::CoreMode core, size_t workers)
{
    obs::Registry registry;
    server::ServerOptions opt;
    opt.core = core;
    opt.workers = workers;
    opt.shards = 2;
    opt.queueCapacity = conns + 16;
    opt.maxConnections = 2 * conns + 16;
    opt.requestTimeoutMs = 30000;
    opt.metrics = &registry;
    opt.service.metrics = &registry;
    opt.service.useCache = true;
    opt.service.cacheCapacity = 1024;
    server::Server srv(std::move(opt));
    srv.start();
    {
        server::HttpClient client("127.0.0.1", srv.port(), 30000);
        for (int id : kIds) {
            server::ClientResponse resp;
            if (!client.request("POST", "/v1/analyze", bodyFor(id),
                                resp) ||
                resp.status != 200)
                std::fprintf(stderr, "warm-up request failed\n");
        }
    }
    Measurement m = driveC10k(srv.port(), conns);
    srv.drain();
    return m;
}

void
addC10kRow(Table &t, size_t conns, const char *core,
           const Measurement &m)
{
    t.addRow({Table::num((long)conns), core,
              Table::num((long)m.requests), Table::num((long)m.errors),
              Table::num(m.rps, 1), Table::num(m.p50Us, 0),
              Table::num(m.p99Us, 0)});
}

bool
writeJson(const std::string &path, const Measurement &shot,
          double cold4, double warm4, const Measurement &e256,
          const Measurement &e1k, const Measurement &e4k,
          const Measurement &t1k, double evented_vs_threaded)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"macs-bench-server-v1\",\n"
        "  \"gated\": {\n"
        "    \"warm4_vs_single_shot_ratio\": %.3f,\n"
        "    \"evented_vs_threaded_1k_ratio\": %.3f\n"
        "  },\n"
        "  \"informative\": {\n"
        "    \"single_shot_rps\": %.1f,\n"
        "    \"cold4_rps\": %.1f,\n"
        "    \"warm4_rps\": %.1f,\n"
        "    \"threaded_1k_rps\": %.1f,\n"
        "    \"evented_256_rps\": %.1f,\n"
        "    \"evented_1k_rps\": %.1f,\n"
        "    \"evented_4k_rps\": %.1f,\n"
        "    \"evented_256_p99_us\": %.0f,\n"
        "    \"evented_1k_p99_us\": %.0f,\n"
        "    \"evented_4k_p99_us\": %.0f\n"
        "  }\n"
        "}\n",
        shot.rps > 0.0 ? warm4 / shot.rps : 0.0, evented_vs_threaded,
        shot.rps, cold4, warm4, t1k.rps, e256.rps, e1k.rps, e4k.rps,
        e256.p99Us, e1k.p99Us, e4k.p99Us);
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: server_throughput [--json PATH]\n");
            return 1;
        }
    }

    std::printf("=== macs serve throughput: POST /v1/analyze, "
                "%zu-id LFK mix ===\n\n",
                kIdCount);
    std::printf("hardware threads: %u\n\n",
                std::thread::hardware_concurrency());

    // Untimed warm-up server: pays thread-pool creation, allocator
    // growth, and first-analysis code paths outside any sample.
    (void)measure(1, 4, /*warm_cache=*/true);

    Table t({"clients", "cache", "requests", "errors", "req/s",
             "p50 us", "p99 us"});

    Measurement shot = measureSingleShot(8);
    t.addRow({"1", "single-shot", Table::num((long)shot.requests),
              Table::num((long)shot.errors), Table::num(shot.rps, 1),
              Table::num(shot.p50Us, 0), Table::num(shot.p99Us, 0)});
    if (shot.errors != 0) {
        std::printf("%s\n", t.render().c_str());
        std::printf("ERROR: single-shot request failures (%zu)\n",
                    shot.errors);
        return 1;
    }

    double cold4 = 0.0, warm4 = 0.0;
    for (size_t clients : {1u, 4u, 16u}) {
        // Cold pays a full analysis per request: keep the request
        // count modest so the bench stays quick on small hosts.
        size_t cold_n = 6;
        size_t warm_n = 60;
        Measurement cold =
            measure(clients, cold_n, /*warm_cache=*/false);
        Measurement warm =
            measure(clients, warm_n, /*warm_cache=*/true);
        if (clients == 4) {
            cold4 = cold.rps;
            warm4 = warm.rps;
        }
        t.addRow({Table::num((long)clients), "cold",
                  Table::num((long)cold.requests),
                  Table::num((long)cold.errors),
                  Table::num(cold.rps, 1), Table::num(cold.p50Us, 0),
                  Table::num(cold.p99Us, 0)});
        t.addRow({Table::num((long)clients), "warm",
                  Table::num((long)warm.requests),
                  Table::num((long)warm.errors),
                  Table::num(warm.rps, 1), Table::num(warm.p50Us, 0),
                  Table::num(warm.p99Us, 0)});
        if (cold.errors != 0 || warm.errors != 0) {
            std::printf("%s\n", t.render().c_str());
            std::printf("ERROR: request failures at %zu clients "
                        "(cold %zu, warm %zu)\n",
                        clients, cold.errors, warm.errors);
            return 1;
        }
    }
    std::printf("%s\n", t.render().c_str());

    double shot_ratio = shot.rps > 0.0 ? warm4 / shot.rps : 0.0;
    bool met = shot_ratio >= 5.0;
    std::printf("warm RPS at 4 clients vs cold single-shot: %.1fx "
                "(floor >= 5x): %s\n",
                shot_ratio, met ? "met" : "NOT met");
    double resident_ratio = cold4 > 0.0 ? warm4 / cold4 : 0.0;
    std::printf("resident warm/cold RPS at 4 clients: %.1fx "
                "(informative)\n\n",
                resident_ratio);

    std::printf("=== C10k sweep: %zu req/conn, %d ms think, "
                "staggered starts ===\n\n",
                kPerConn, kThinkMs);

    Table c10k({"conns", "core", "requests", "errors", "req/s",
                "p50 us", "p99 us"});

    Measurement e256 =
        measureC10k(256, server::CoreMode::Evented, 4);
    addC10kRow(c10k, 256, "evented", e256);

    // Median of 3 for the evented side of the gated ratio; the
    // threaded side's wall time is dominated by deterministic
    // think-time waves, so one sample is stable.
    Measurement e1k_samples[3];
    for (Measurement &m : e1k_samples)
        m = measureC10k(1024, server::CoreMode::Evented, 4);
    std::sort(std::begin(e1k_samples), std::end(e1k_samples),
              [](const Measurement &a, const Measurement &b) {
                  return a.rps < b.rps;
              });
    Measurement e1k = e1k_samples[1];
    addC10kRow(c10k, 1024, "evented", e1k);

    Measurement t1k =
        measureC10k(1024, server::CoreMode::Threaded, 16);
    addC10kRow(c10k, 1024, "threaded-16w", t1k);

    Measurement e4k =
        measureC10k(4096, server::CoreMode::Evented, 4);
    addC10kRow(c10k, 4096, "evented", e4k);

    std::printf("%s\n", c10k.render().c_str());

    size_t sweep_errors =
        e256.errors + e1k.errors + t1k.errors + e4k.errors;
    if (sweep_errors != 0) {
        std::printf("ERROR: %zu request failures in the C10k sweep\n",
                    sweep_errors);
        return 1;
    }

    double evented_vs_threaded =
        t1k.rps > 0.0 ? e1k.rps / t1k.rps : 0.0;
    bool c10k_met = evented_vs_threaded >= 5.0;
    std::printf("evented vs threaded-16w RPS at 1024 conns: %.1fx "
                "(floor >= 5x): %s\n",
                evented_vs_threaded, c10k_met ? "met" : "NOT met");

    // Bounded p99: a thinking herd must not starve active requests.
    // Waves of worker hand-offs (the threaded failure mode) show up
    // as p99 of SECONDS (think time x wave count); the evented core
    // must stay orders of magnitude under that at every tier. The
    // bound is loose enough for single-CPU hosts where the load
    // generator itself competes with the server for the core.
    constexpr double kP99BoundUs = 250000.0; // 250 ms
    bool p99_ok = e256.p99Us <= kP99BoundUs &&
                  e1k.p99Us <= kP99BoundUs &&
                  e4k.p99Us <= kP99BoundUs;
    std::printf("evented p99 at 256/1024/4096 conns: "
                "%.0f/%.0f/%.0f us (bound <= %.0f us): %s\n\n",
                e256.p99Us, e1k.p99Us, e4k.p99Us, kP99BoundUs,
                p99_ok ? "met" : "NOT met");

    std::printf(
        "single-shot pays server + service bootstrap per query (the\n"
        "one-shot CLI pattern); cold keeps the server resident but\n"
        "disables the memo cache, so each request pays a full MACS\n"
        "hierarchy analysis; warm pre-computes the id mix so each\n"
        "request is an LRU cache hit and the remaining cost is HTTP\n"
        "parsing + dispatch + JSON rendering. The C10k sweep drives\n"
        "keep-alive connections with think time: thread-per-session\n"
        "pins a worker per connection (1024 conns / 16 workers = 64\n"
        "serialized waves of think time), while the evented core\n"
        "overlaps every idle connection for free.\n");

    if (!json_path.empty() &&
        !writeJson(json_path, shot, cold4, warm4, e256, e1k, e4k,
                   t1k, evented_vs_threaded))
        return 1;

    return met && c10k_met && p99_ok ? 0 : 1;
}
