/**
 * @file
 * Reproduces paper Table 1: vector instruction execution times at
 * VL = 128. The spec columns come from the machine description; the
 * measured columns are re-derived by running calibration loops on the
 * simulator and fitting X+Y (startup), Z (slope), and B (intercept),
 * exactly as the paper did against the physical C-240 (section 3.2).
 */

#include <cstdio>

#include "calib/calibration.h"
#include "machine/machine_config.h"
#include "support/table.h"

int
main()
{
    using namespace macs;

    std::printf("=== Table 1: Vector Instruction Execution Times "
                "(VL = 128) ===\n\n");

    machine::MachineConfig quiet = machine::MachineConfig::noRefresh();
    machine::MachineConfig full = machine::MachineConfig::convexC240();

    Table t({"instruction", "X", "Y", "Z", "B", "fit X+Y", "fit Z",
             "fit B", "fit Z (refresh on)"});
    for (isa::Opcode op : calib::table1Opcodes()) {
        const auto &spec = quiet.timing(op);
        calib::CalibrationResult r = calib::calibrate(op, quiet);
        calib::CalibrationResult rr = calib::calibrate(op, full);
        t.addRow({isa::opcodeInfo(op).mnemonic, Table::num((long)spec.x),
                  Table::num((long)spec.y), Table::num(spec.z, 2),
                  Table::num((long)spec.bubble),
                  Table::num(r.startupFit, 1), Table::num(r.zFit, 2),
                  Table::num(r.bFit, 1), Table::num(rr.zFit, 3)});
    }
    std::printf("%s\n", t.render().c_str());

    std::printf(
        "paper Table 1 (spec): ld 2/10/1.00/2, st 2/10/1.00/4,\n"
        "  add 2/10/1.00/1, mul 2/12/1.00/1, sub 2/10/1.00/1,\n"
        "  div 2/72/4.00/21, sum 2/10/1.35/0, neg 2/10/1.00/1.\n"
        "The refresh-on fit shows the ~2%% slope inflation the paper's\n"
        "memory-refresh discussion predicts for saturated streams.\n");
    return 0;
}
