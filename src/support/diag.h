/**
 * @file
 * Structured diagnostics engine (docs/ROBUSTNESS.md).
 *
 * fatal() aborts at the FIRST user error; for anything that consumes
 * user *input* (the loop DSL, the assembler, fault-plan specs, batch
 * manifests) we instead want compiler-style behavior: recover at a
 * statement/instruction boundary, keep going, and report EVERY error
 * with file:line:column context and a source snippet.
 *
 * A Diagnostics object collects Diagnostic records; producers call
 * error()/warning() as they recover, consumers either inspect the
 * records programmatically or call throwIfErrors(), which raises a
 * DiagnosticError whose what() is the fully rendered multi-error
 * report. DiagnosticError derives from FatalError, so call sites (and
 * tests) that handle the legacy single-error contract keep working
 * unchanged.
 *
 * Rendering format (one block per diagnostic):
 *
 *   bad.loop:3:9: error: expected ')' near '='
 *       x(k = y(k)
 *           ^
 */

#ifndef MACS_SUPPORT_DIAG_H
#define MACS_SUPPORT_DIAG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/logging.h"

namespace macs {

/** A 1-based position in a source text; line 0 means "no location". */
struct SourceLoc
{
    size_t line = 0;
    size_t col = 0;

    bool valid() const { return line > 0; }

    bool operator==(const SourceLoc &) const = default;
};

enum class DiagSeverity : uint8_t
{
    Error,
    Warning,
    Note,
};

/** Human-readable severity label ("error", "warning", "note"). */
const char *diagSeverityName(DiagSeverity severity);

/** One collected diagnostic. */
struct Diagnostic
{
    DiagSeverity severity = DiagSeverity::Error;
    std::string file;    ///< input name ("<loop>", a path, "MACS_FAULTS")
    SourceLoc loc;       ///< position; may be invalid() for global errors
    std::string message;
    std::string snippet; ///< the source line text ("" when unavailable)

    /** Render this diagnostic alone (same format as Diagnostics). */
    std::string render() const;
};

/**
 * Thrown by Diagnostics::throwIfErrors(); what() carries the complete
 * rendered report of every collected diagnostic, not just the first.
 * Derives from FatalError so existing catch sites keep working.
 */
class DiagnosticError : public FatalError
{
  public:
    DiagnosticError(const std::string &rendered, size_t error_count)
        : FatalError(rendered), errorCount_(error_count)
    {
    }

    size_t errorCount() const { return errorCount_; }

  private:
    size_t errorCount_;
};

/** Collector for recoverable user-input errors. */
class Diagnostics
{
  public:
    Diagnostics() = default;
    explicit Diagnostics(std::string file) : file_(std::move(file)) {}

    /**
     * Attach the source text being parsed so snippets can be rendered;
     * @p file names the input in messages. The text is copied (split
     * into lines), so the caller's buffer need not outlive this.
     */
    void setSource(std::string_view text, std::string file);

    const std::string &file() const { return file_; }

    /** Record one diagnostic at @p loc. @{ */
    void error(SourceLoc loc, std::string message);
    void warning(SourceLoc loc, std::string message);
    void note(SourceLoc loc, std::string message);
    /** Location-free convenience forms. @{ */
    void error(std::string message) { error(SourceLoc{}, std::move(message)); }
    void warning(std::string message)
    {
        warning(SourceLoc{}, std::move(message));
    }
    /** @} @} */

    bool hasErrors() const { return errorCount_ > 0; }
    size_t errorCount() const { return errorCount_; }

    /**
     * True once maxErrors have been recorded; recovering parsers stop
     * at this point instead of producing an unbounded cascade. The
     * limit-reached condition itself is reported once.
     */
    bool atErrorLimit() const { return errorCount_ >= maxErrors; }

    const std::vector<Diagnostic> &entries() const { return entries_; }

    /** Render every diagnostic, one block per entry, plus a summary. */
    std::string render() const;

    /**
     * Throw DiagnosticError(render()) when any error was collected;
     * no-op otherwise. Warnings and notes alone never throw.
     */
    void throwIfErrors() const;

    /** Move the entries of @p other into this collector. */
    void take(Diagnostics &&other);

    /** Cascade cap; see atErrorLimit(). */
    size_t maxErrors = 32;

  private:
    void add(DiagSeverity severity, SourceLoc loc, std::string message);

    std::string file_ = "<input>";
    std::vector<std::string> lines_; ///< source split for snippets
    std::vector<Diagnostic> entries_;
    size_t errorCount_ = 0;
    bool capNoted_ = false;
};

} // namespace macs

#endif // MACS_SUPPORT_DIAG_H
