/**
 * @file
 * MACS-D tests: stride binding by constant propagation, bank-conflict
 * charging, and consistency with both plain MACS and the simulator.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/macsd.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"
#include "support/logging.h"

namespace macs::model {
namespace {

machine::MachineConfig
paperMachine()
{
    return machine::MachineConfig::convexC240();
}

isa::Program
strideProgram(int stride, const char *stride_setup)
{
    std::string text = std::string(".comm data,8192\n") + stride_setup +
                       R"(
    mov #256,s0
    mov #0,a1
L1: mov s0,VL
    lds.l data(a1),s1,v0
    add.d v0,v0,v1
    sub #128,s0
    lt.w #0,s0
    jbrs.t L1
)";
    (void)stride;
    return isa::assemble(text);
}

TEST(MacsD, BindsImmediateStride)
{
    isa::Program p = strideProgram(8, "    mov #8,s1\n");
    StrideBinding b = bindStrides(p);
    ASSERT_EQ(b.strides.size(), 1u);
    EXPECT_EQ(b.strides.begin()->second, 8);
    EXPECT_TRUE(b.unbound.empty());
}

TEST(MacsD, BindsComputedStride)
{
    isa::Program p = strideProgram(
        12, "    mov #4,s1\n    mov #3,s2\n    mul.w s1,s2,s1\n");
    StrideBinding b = bindStrides(p);
    ASSERT_EQ(b.strides.size(), 1u);
    EXPECT_EQ(b.strides.begin()->second, 12);
}

TEST(MacsD, LoadedStrideIsUnbound)
{
    isa::Program p = strideProgram(
        0, "    .comm cell,1\n    ld.w cell,s1\n");
    StrideBinding b = bindStrides(p);
    EXPECT_TRUE(b.strides.empty());
    EXPECT_EQ(b.unbound.size(), 1u);
}

TEST(MacsD, BodyClobberedStrideIsUnbound)
{
    isa::Program p = isa::assemble(R"(
.comm data,8192
    mov #2,s1
    mov #256,s0
    mov #0,a1
L1: mov s0,VL
    lds.l data(a1),s1,v0
    add.w #1,s1
    sub #128,s0
    lt.w #0,s0
    jbrs.t L1
)");
    StrideBinding b = bindStrides(p);
    EXPECT_EQ(b.unbound.size(), 1u);
}

TEST(MacsD, UnitStrideOpsBindToOne)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    StrideBinding b = bindStrides(p);
    EXPECT_EQ(b.strides.size(), 4u);
    for (const auto &[idx, s] : b.strides)
        EXPECT_EQ(s, 1);
}

TEST(MacsD, ConflictFreeStrideEqualsPlainMacs)
{
    // Stride 5 visits all 32 banks: no degradation.
    isa::Program p = strideProgram(5, "    mov #5,s1\n");
    MacsDResult d = evaluateMacsD(p, paperMachine());
    MacsResult plain = evaluateMacs(p.innerLoop(), paperMachine());
    EXPECT_DOUBLE_EQ(d.macs.cpl, plain.cpl);
    EXPECT_DOUBLE_EQ(d.worstMemoryRate, 1.0);
}

TEST(MacsD, ConflictedStrideRaisesBound)
{
    isa::Program p = strideProgram(32, "    mov #32,s1\n");
    MacsDResult d = evaluateMacsD(p, paperMachine());
    MacsResult plain = evaluateMacs(p.innerLoop(), paperMachine());
    EXPECT_DOUBLE_EQ(d.worstMemoryRate, 8.0);
    // The load now sustains 8 cycles/element: the bound grows ~8x.
    EXPECT_GT(d.macs.cpl, plain.cpl * 6.0);
}

TEST(MacsD, BoundStaysBelowSimulatedTime)
{
    for (int stride : {1, 2, 8, 16, 32}) {
        isa::Program p = strideProgram(
            stride, ("    mov #" + std::to_string(stride) + ",s1\n")
                        .c_str());
        MacsDResult d = evaluateMacsD(p, paperMachine());
        isa::Program p2 = strideProgram(
            stride, ("    mov #" + std::to_string(stride) + ",s1\n")
                        .c_str());
        sim::Simulator s(paperMachine(), p2);
        double measured_cpl = s.run().cycles / 256.0;
        EXPECT_LE(d.macs.cpl, measured_cpl + 1e-9)
            << "stride " << stride;
        // And the D bound explains most of the measured time.
        EXPECT_GE(d.macs.cpl / measured_cpl, 0.80)
            << "stride " << stride;
    }
}

TEST(MacsD, PlainMacsMissesWhatDSees)
{
    // The decomposition gap: MACS predicts ~1 cycle/element for a
    // stride-32 stream; only MACS-D (and the machine) see the 8x.
    isa::Program p = strideProgram(32, "    mov #32,s1\n");
    MacsResult plain = evaluateMacs(p.innerLoop(), paperMachine());
    isa::Program p2 = strideProgram(32, "    mov #32,s1\n");
    sim::Simulator s(paperMachine(), p2);
    double measured_cpl = s.run().cycles / 256.0;
    EXPECT_LT(plain.cpl / measured_cpl, 0.30);
}

class MacsDOnLfk : public ::testing::TestWithParam<int>
{
};

TEST_P(MacsDOnLfk, CaseStudyStridesAreConflictFree)
{
    // The paper: "most memory accesses are unit stride" — and the
    // non-unit ones (2, 5, 25, -1) are coprime enough with 32 banks
    // that MACS-D reduces to MACS on the whole case study.
    lfk::Kernel k = lfk::makeKernel(GetParam());
    MacsDResult d = evaluateMacsD(k.program, paperMachine());
    MacsResult plain =
        evaluateMacs(k.program.innerLoop(), paperMachine());
    EXPECT_TRUE(d.binding.unbound.empty());
    EXPECT_DOUBLE_EQ(d.worstMemoryRate, 1.0);
    EXPECT_DOUBLE_EQ(d.macs.cpl, plain.cpl);
}

INSTANTIATE_TEST_SUITE_P(AllLfk, MacsDOnLfk,
                         ::testing::ValuesIn(lfk::lfkIds()),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

TEST(MacsD, PaddingFixesColumnAccess)
{
    // The classic decomposition fix: a 32-word column stride collides,
    // padding the leading dimension to 33 restores full speed. MACS-D
    // quantifies the decision; plain MACS cannot see it.
    isa::Program bad = strideProgram(32, "    mov #32,s1\n");
    isa::Program good = strideProgram(33, "    mov #33,s1\n");
    MacsDResult db = evaluateMacsD(bad, paperMachine());
    MacsDResult dg = evaluateMacsD(good, paperMachine());
    EXPECT_GT(db.macs.cpl, dg.macs.cpl * 4.0);
    EXPECT_DOUBLE_EQ(dg.worstMemoryRate, 1.0);
}

} // namespace
} // namespace macs::model
