file(REMOVE_RECURSE
  "libmacs_sim.a"
)
