# Empty compiler generated dependencies file for macs_sim.
# This may be replaced when dependencies are built.
