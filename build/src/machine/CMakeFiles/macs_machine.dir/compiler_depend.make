# Empty compiler generated dependencies file for macs_machine.
# This may be replaced when dependencies are built.
