/**
 * @file
 * Instruction representation: operands, memory references, and register
 * use/def queries used by the chime partitioner and the simulator.
 */

#ifndef MACS_ISA_INSTRUCTION_H
#define MACS_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcode.h"
#include "isa/registers.h"

namespace macs::isa {

/**
 * A memory reference: optional symbol plus byte offset, indexed by an
 * address register: "sym+offset(aN)". The stride of strided vector
 * accesses lives in a scalar register operand of the instruction, not
 * here.
 */
struct MemRef
{
    std::string symbol;  ///< data symbol; empty for absolute/reg-only
    int64_t offset = 0;  ///< byte offset added to symbol/base
    Reg base = noreg();  ///< address register (may be None)

    bool operator==(const MemRef &o) const = default;

    /** Render as assembly text. */
    std::string toString() const;
};

/**
 * One machine instruction.
 *
 * Operand conventions (mirroring the Convex assembly in the paper,
 * source(s) first, destination last):
 *  - VLd:  mem -> dst(v)                       src2 unused
 *  - VLdS: mem, src1(s stride) -> dst(v)
 *  - VSt:  src1(v) -> mem
 *  - VStS: src1(v), src2(s stride) -> mem
 *  - VAdd/VSub/VMul/VDiv: src1, src2 -> dst    (v or broadcast s sources)
 *  - VNeg: src1(v) -> dst(v)
 *  - VSum: src1(v) -> dst(s)                   reduction into scalar
 *  - SLd:  mem -> dst(s|a);  SSt: src1(s|a) -> mem
 *  - SAdd/SSub/SMul: src1, src2 -> dst; or #imm, rD two-operand form
 *    (rD := rD op imm) with dst==src2 slot empty
 *  - SMov: src1 or #imm -> dst (dst may be the VL register)
 *  - SLt/SLe: src1 or #imm, src2 -> test flag
 *  - BrT/BrF/Jmp: label
 */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg dst = noreg();
    Reg src1 = noreg();
    Reg src2 = noreg();
    MemRef mem;
    int64_t imm = 0;
    bool hasImm = false;
    std::string target;  ///< branch target label
    std::string comment; ///< free-form, printed after ';'

    /** Static properties of this instruction's opcode. */
    const OpcodeInfo &info() const { return opcodeInfo(op); }

    bool isVector() const { return isVectorOp(op); }
    bool isVectorMemory() const { return isVectorMem(op); }
    bool isVectorFloat() const { return isVectorFp(op); }
    bool isScalarMemory() const { return isScalarMem(op); }
    bool isBranch() const { return isControl(op); }

    /** Vector pipe this instruction uses (Pipe::None if scalar). */
    Pipe pipe() const { return info().pipe; }

    /** Vector registers read by this instruction. */
    std::vector<Reg> vectorReads() const;
    /** Vector registers written by this instruction. */
    std::vector<Reg> vectorWrites() const;
    /** Scalar/address registers read (including mem base and stride). */
    std::vector<Reg> scalarReads() const;
    /** Scalar/address register written, if any. */
    Reg scalarWrite() const;

    /** Render as one line of assembly (no label, no trailing newline). */
    std::string toString() const;
};

/** Convenience constructors used by code generators and tests. @{ */
Instruction makeVLoad(const MemRef &mem, Reg vdst);
Instruction makeVLoadStrided(const MemRef &mem, Reg stride, Reg vdst);
Instruction makeVStore(Reg vsrc, const MemRef &mem);
Instruction makeVStoreStrided(Reg vsrc, Reg stride, const MemRef &mem);
Instruction makeVBinary(Opcode op, Reg a, Reg b, Reg vdst);
Instruction makeVNeg(Reg vsrc, Reg vdst);
Instruction makeVSum(Reg vsrc, Reg sdst);
Instruction makeSLoad(const MemRef &mem, Reg dst);
Instruction makeSStore(Reg src, const MemRef &mem);
Instruction makeSBinary(Opcode op, Reg a, Reg b, Reg dst);
Instruction makeSFBinary(Opcode op, Reg a, Reg b, Reg dst);
Instruction makeSAddImm(int64_t imm, Reg reg);
Instruction makeSSubImm(int64_t imm, Reg reg);
Instruction makeMovImm(int64_t imm, Reg dst);
Instruction makeMov(Reg src, Reg dst);
Instruction makeCmpImm(Opcode op, int64_t imm, Reg reg);
Instruction makeBranch(Opcode op, const std::string &label);
/** @} */

} // namespace macs::isa

#endif // MACS_ISA_INSTRUCTION_H
