#include "pipeline/report.h"

#include <sstream>

#include "support/strings.h"
#include "support/table.h"

namespace macs::pipeline {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Fixed six-decimal rendering keeps the document deterministic. */
std::string
jnum(double v)
{
    return format("%.6f", v);
}

void
appendWorkload(std::ostringstream &os, const char *name,
               const model::WorkloadCounts &w)
{
    os << "      \"" << name << "\": {\"fAdd\": " << w.fAdd
       << ", \"fMul\": " << w.fMul << ", \"loads\": " << w.loads
       << ", \"stores\": " << w.stores << "},\n";
}

} // namespace

std::string
renderBatchJson(const BatchResult &result, bool include_timing)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"macs-batch-v1\",\n";
    os << "  \"jobs\": [\n";
    for (size_t i = 0; i < result.results.size(); ++i) {
        const JobResult &r = result.results[i];
        os << "    {\n";
        os << "      \"label\": \"" << jsonEscape(r.label) << "\",\n";
        os << "      \"config\": \"" << jsonEscape(r.configName)
           << "\",\n";
        os << "      \"vectorLength\": " << r.vectorLength << ",\n";
        if (!r.ok()) {
            os << "      \"error\": \"" << jsonEscape(r.error)
               << "\"\n";
        } else {
            const model::KernelAnalysis &a = *r.analysis;
            appendWorkload(os, "ma", a.ma);
            appendWorkload(os, "mac", a.mac);
            os << "      \"boundsCpl\": {"
               << "\"tF\": " << jnum(a.maBound.tF)
               << ", \"tM\": " << jnum(a.maBound.tM)
               << ", \"tFPrime\": " << jnum(a.macBound.tF)
               << ", \"tMPrime\": " << jnum(a.macBound.tM)
               << ", \"tMA\": " << jnum(a.maBound.bound)
               << ", \"tMAC\": " << jnum(a.macBound.bound)
               << ", \"tMACS\": " << jnum(a.macs.cpl)
               << ", \"tMACSf\": " << jnum(a.macsFOnly.cpl)
               << ", \"tMACSm\": " << jnum(a.macsMOnly.cpl) << "},\n";
            os << "      \"measuredCpl\": {"
               << "\"tP\": " << jnum(a.tP) << ", \"tA\": " << jnum(a.tA)
               << ", \"tX\": " << jnum(a.tX) << "},\n";
            os << "      \"cpf\": {"
               << "\"tMA\": " << jnum(a.maCpf())
               << ", \"tMAC\": " << jnum(a.macCpf())
               << ", \"tMACS\": " << jnum(a.macsCpf())
               << ", \"tP\": " << jnum(a.actualCpf()) << "},\n";
            os << "      \"mflops\": "
               << jnum(r.clockMhz / a.actualCpf()) << ",\n";
            os << "      \"chimes\": " << a.macs.chimes.size() << "\n";
        }
        os << "    }" << (i + 1 < result.results.size() ? "," : "")
           << "\n";
    }
    os << "  ]";
    if (include_timing) {
        const BatchStats &s = result.stats;
        os << ",\n  \"stats\": {"
           << "\"jobs\": " << s.jobs << ", \"workers\": " << s.workers
           << ", \"cacheHits\": " << s.cacheHits
           << ", \"cacheMisses\": " << s.cacheMisses
           << ", \"failures\": " << s.failures
           << ", \"wallUs\": " << jnum(s.wallUs)
           << ", \"computeUs\": " << jnum(s.computeUs)
           << ", \"queueWaitUs\": " << jnum(s.queueWaitUs)
           << ", \"jobsPerSec\": " << jnum(s.jobsPerSec()) << "},\n";
        os << "  \"jobTiming\": [\n";
        for (size_t i = 0; i < result.results.size(); ++i) {
            const JobTiming &t = result.results[i].timing;
            os << "    {\"label\": \""
               << jsonEscape(result.results[i].label)
               << "\", \"cacheHit\": "
               << (t.cacheHit ? "true" : "false")
               << ", \"queueWaitUs\": " << jnum(t.queueWaitUs)
               << ", \"computeUs\": " << jnum(t.computeUs)
               << ", \"totalUs\": " << jnum(t.totalUs) << "}"
               << (i + 1 < result.results.size() ? "," : "") << "\n";
        }
        os << "  ]\n";
    } else {
        os << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
renderBatchMarkdown(const BatchResult &result, bool include_timing)
{
    std::ostringstream os;
    os << "# MACS batch analysis\n\n";

    os << "## Bounds (CPL)\n\n";
    os << "| job | config | VL | t_MA | t_MAC | t_MACS | t_MACS^f | "
          "t_MACS^m |\n";
    os << "|---|---|---|---|---|---|---|---|\n";
    for (const JobResult &r : result.results) {
        if (!r.ok()) {
            os << "| " << r.label << " | " << r.configName
               << " | - | FAILED | | | | |\n";
            continue;
        }
        const model::KernelAnalysis &a = *r.analysis;
        os << "| " << r.label << " | " << r.configName << " | "
           << r.vectorLength << " | " << format("%.3f", a.maBound.bound)
           << " | " << format("%.3f", a.macBound.bound) << " | "
           << format("%.3f", a.macs.cpl) << " | "
           << format("%.3f", a.macsFOnly.cpl) << " | "
           << format("%.3f", a.macsMOnly.cpl) << " |\n";
    }

    os << "\n## Bounds vs measured (CPF)\n\n";
    os << "| job | t_MA | t_MAC | t_MACS | t_p | %MACS | MFLOPS |\n";
    os << "|---|---|---|---|---|---|---|\n";
    for (const JobResult &r : result.results) {
        if (!r.ok())
            continue;
        const model::KernelAnalysis &a = *r.analysis;
        os << "| " << r.label << " | " << format("%.3f", a.maCpf())
           << " | " << format("%.3f", a.macCpf()) << " | "
           << format("%.3f", a.macsCpf()) << " | "
           << format("%.3f", a.actualCpf()) << " | "
           << format("%.1f", 100.0 * a.macsCpf() / a.actualCpf())
           << " | " << format("%.2f", r.clockMhz / a.actualCpf())
           << " |\n";
    }

    bool any_failed = false;
    for (const JobResult &r : result.results)
        any_failed = any_failed || !r.ok();
    if (any_failed) {
        os << "\n## Failures\n\n";
        for (const JobResult &r : result.results) {
            if (!r.ok())
                os << "- **" << r.label << "** (" << r.configName
                   << "): " << r.error << "\n";
        }
    }

    if (include_timing) {
        const BatchStats &s = result.stats;
        os << "\n## Pipeline stats (scheduling-dependent)\n\n";
        os << renderStatsLine(s) << "\n\n";
        os << "| job | cache | queue wait (us) | compute (us) | total "
              "(us) |\n";
        os << "|---|---|---|---|---|\n";
        for (const JobResult &r : result.results) {
            os << "| " << r.label << " | "
               << (r.timing.cacheHit ? "hit" : "miss") << " | "
               << format("%.1f", r.timing.queueWaitUs) << " | "
               << format("%.1f", r.timing.computeUs) << " | "
               << format("%.1f", r.timing.totalUs) << " |\n";
        }
    }
    return os.str();
}

std::string
renderStatsLine(const BatchStats &s)
{
    return format(
        "%zu job(s) on %zu worker(s): %.1f jobs/s, wall %.1f ms, "
        "compute %.1f ms, queue wait %.1f ms, cache %zu hit / %zu "
        "miss, %zu failure(s)",
        s.jobs, s.workers, s.jobsPerSec(), s.wallUs / 1000.0,
        s.computeUs / 1000.0, s.queueWaitUs / 1000.0, s.cacheHits,
        s.cacheMisses, s.failures);
}

} // namespace macs::pipeline
