# Empty compiler generated dependencies file for workload_metrics_test.
# This may be replaced when dependencies are built.
