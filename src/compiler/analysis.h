/**
 * @file
 * Source-level analysis: the MA workload (perfect index analysis), the
 * workload the code generator will actually emit (predicted MAC), and
 * the vectorizability check.
 *
 * Perfect index analysis groups array reads by (array, index
 * coefficient): references that differ only by a constant offset reuse
 * the same element stream across iterations, so the group costs one
 * load per iteration; reads of a stream the loop also writes are
 * forwarded from registers and cost nothing (paper section 3.1). The
 * real compiler keeps no values in vector registers across iterations
 * (a shifted vector would need a reload or a vector shift), so the MAC
 * prediction counts one load per distinct (array, coef, offset)
 * reference instead.
 */

#ifndef MACS_COMPILER_ANALYSIS_H
#define MACS_COMPILER_ANALYSIS_H

#include <string>
#include <vector>

#include "compiler/ast.h"
#include "macs/workload.h"

namespace macs::compiler {

/** Result of analyzing a loop's source. */
struct SourceAnalysis
{
    model::WorkloadCounts ma;   ///< perfect-index-analysis workload
    model::WorkloadCounts mac;  ///< workload the code generator emits
    bool vectorizable = true;
    std::string reason;         ///< why not, when !vectorizable
    std::vector<std::string> reductionScalars;
    std::vector<std::string> broadcastScalars; ///< read-only scalars
};

/** Analyze @p loop (see file comment). */
SourceAnalysis analyzeSource(const Loop &loop);

} // namespace macs::compiler

#endif // MACS_COMPILER_ANALYSIS_H
