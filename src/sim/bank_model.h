/**
 * @file
 * Element-granularity bank simulation: the ground-truth model the
 * analytic stride-rate formula (MemoryPort::strideRate) is validated
 * against.
 *
 * The interleaved memory is modeled bank by bank: the port issues at
 * most one request per cycle, a request must wait for its bank's busy
 * timer, and each access occupies its bank for bankBusyCycles. This is
 * slower than the closed form but makes no periodicity assumptions, so
 * it also answers questions the formula cannot: alignment effects,
 * mixed-stride request interleaving, and the transient before a stream
 * reaches its steady rate.
 */

#ifndef MACS_SIM_BANK_MODEL_H
#define MACS_SIM_BANK_MODEL_H

#include <cstdint>
#include <vector>

#include "machine/machine_config.h"

namespace macs::sim {

/** Outcome of a bank-accurate stream simulation. */
struct BankSimResult
{
    double cycles = 0.0;        ///< first issue to last issue + busy
    double sustainedRate = 0.0; ///< asymptotic cycles per element
    double transientCycles = 0.0; ///< extra cycles before steady state
};

/**
 * Simulate a single @p elements-long stream of word stride @p stride
 * starting at word @p start_word.
 */
BankSimResult simulateBankStream(const machine::MemoryConfig &config,
                                 int elements, int64_t stride,
                                 uint64_t start_word = 0);

/**
 * Simulate two interleaved streams (a load and a store of the same
 * length, alternating requests) — the port pattern of a copy loop.
 * Returns total cycles for both streams.
 */
double simulateInterleavedStreams(const machine::MemoryConfig &config,
                                  int elements, int64_t stride_a,
                                  uint64_t start_a, int64_t stride_b,
                                  uint64_t start_b);

/**
 * Precomputed bank-busy schedule: sustained cycles/element for every
 * stride residue class. The rate of a stride s depends only on
 * |s| % banks, so table[|s| % banks] == MemoryPort::strideRate(s)
 * for all strides — the simulator's fast tier builds this once per
 * run and services every stream of a strip by table lookup instead of
 * recomputing the gcd form per stream (bank_model_test cross-checks
 * the table against MemoryPort::strideRate and this file's
 * element-granularity bank simulation).
 */
std::vector<double> strideRateTable(const machine::MemoryConfig &config);

} // namespace macs::sim

#endif // MACS_SIM_BANK_MODEL_H
