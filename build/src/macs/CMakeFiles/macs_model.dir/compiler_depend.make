# Empty compiler generated dependencies file for macs_model.
# This may be replaced when dependencies are built.
