/**
 * @file
 * Multi-CPU contention fixed-point tests: convergence, consistency
 * with the paper's observed band, masking behaviour, and lock-step vs
 * independent mixes.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "sim/multi_cpu.h"
#include "support/logging.h"

namespace macs::sim {
namespace {

machine::MachineConfig
paperMachine()
{
    return machine::MachineConfig::convexC240();
}

/** Keep kernels/programs alive for the duration of a test. */
struct JobSet
{
    std::vector<lfk::Kernel> kernels;
    std::vector<CpuJob> jobs;

    explicit JobSet(const std::vector<int> &ids)
    {
        kernels.reserve(ids.size());
        for (int id : ids)
            kernels.push_back(lfk::makeKernel(id));
        for (auto &k : kernels)
            jobs.push_back({&k.program, k.setup});
    }
};

TEST(MultiCpu, SingleCpuHasNoContention)
{
    JobSet set({1});
    MultiCpuResult r = runMultiCpu(set.jobs, paperMachine());
    ASSERT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.factor[0], 1.0);
}

TEST(MultiCpu, FourMemoryBoundKernelsReachPaperBand)
{
    // Four copies of the memory-saturated LFK1: utilization ~1 each,
    // so the fixed point lands at 1 + 0.15*3 ~ 1.45 — inside the
    // paper's 56-64 ns band (1.4 .. 1.6).
    JobSet set({1, 1, 1, 1});
    MultiCpuResult r = runMultiCpu(set.jobs, paperMachine());
    ASSERT_TRUE(r.converged);
    for (double f : r.factor) {
        EXPECT_GE(f, 1.35);
        EXPECT_LE(f, 1.60);
    }
    for (double u : r.utilization)
        EXPECT_GT(u, 0.85);
}

TEST(MultiCpu, LockStepContendsLess)
{
    JobSet ind({1, 1, 1, 1});
    JobSet ls({1, 1, 1, 1});
    MultiCpuOptions lock;
    lock.mix = WorkloadMix::LockStep;
    MultiCpuResult ri = runMultiCpu(ind.jobs, paperMachine());
    MultiCpuResult rl = runMultiCpu(ls.jobs, paperMachine(), lock);
    EXPECT_LT(rl.factor[0], ri.factor[0]);
    EXPECT_LT(rl.stats[0].cycles, ri.stats[0].cycles);
}

TEST(MultiCpu, LowUtilizationNeighborsContendLess)
{
    // LFK5/11 run on the scalar unit with sparse memory traffic; an
    // LFK1 sharing memory with them suffers much less than with three
    // other vector kernels.
    JobSet heavy({1, 1, 1, 1});
    JobSet light({1, 5, 11, 5});
    MultiCpuResult rh = runMultiCpu(heavy.jobs, paperMachine());
    MultiCpuResult rlite = runMultiCpu(light.jobs, paperMachine());
    EXPECT_LT(rlite.factor[0], rh.factor[0] - 0.1);
}

TEST(MultiCpu, DegradationMatchesRuleOfThumbShape)
{
    JobSet set({1, 3, 10, 12});
    MultiCpuResult multi = runMultiCpu(set.jobs, paperMachine());
    ASSERT_TRUE(multi.converged);

    JobSet solo({1});
    MultiCpuResult single = runMultiCpu(solo.jobs, paperMachine());
    double deg =
        multi.stats[0].cycles / single.stats[0].cycles - 1.0;
    // Memory-saturated inner loops expose most of the stream slowdown.
    EXPECT_GT(deg, 0.10);
    EXPECT_LT(deg, 0.60);
}

TEST(MultiCpu, FixedPointIsMonotoneInCpuCount)
{
    double prev = 1.0;
    for (size_t n = 1; n <= 4; ++n) {
        JobSet set(std::vector<int>(n, 1));
        MultiCpuResult r = runMultiCpu(set.jobs, paperMachine());
        EXPECT_GE(r.factor[0], prev - 1e-9) << n << " CPUs";
        prev = r.factor[0];
    }
}

TEST(MultiCpu, GuardsBadInput)
{
    EXPECT_THROW(runMultiCpu({}, paperMachine()), PanicError);
    JobSet set({1, 1, 1, 1});
    auto jobs = set.jobs;
    jobs.push_back(jobs.front());
    // Five jobs overflow the canonical four-CPU C-240...
    EXPECT_THROW(runMultiCpu(jobs, paperMachine()), PanicError);
    CpuJob null_job;
    EXPECT_THROW(runMultiCpu({null_job}, paperMachine()), PanicError);
}

TEST(MultiCpu, JobCapFollowsMachineCpuCount)
{
    // ...but the cap is MachineConfig::cpus, not a hard-coded 4: an
    // eight-CPU what-if machine accepts a five-job fleet.
    JobSet set({1, 5, 11, 5, 11});
    machine::MachineConfig cfg = paperMachine();
    cfg.cpus = 8;
    MultiCpuResult r = runMultiCpu(set.jobs, cfg);
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.stats.size(), 5u);

    cfg.cpus = 2;
    EXPECT_THROW(runMultiCpu(set.jobs, cfg), PanicError);
}

TEST(MultiCpu, ContentionFactorPinnedValues)
{
    // The analytic tier's calibration constants are load-bearing for
    // Figure 3's multi-process series — pin them exactly.
    EXPECT_DOUBLE_EQ(contentionFactor(1, WorkloadMix::Independent), 1.0);
    EXPECT_DOUBLE_EQ(contentionFactor(2, WorkloadMix::Independent), 1.15);
    EXPECT_DOUBLE_EQ(contentionFactor(3, WorkloadMix::Independent), 1.30);
    EXPECT_DOUBLE_EQ(contentionFactor(4, WorkloadMix::Independent), 1.45);
    EXPECT_DOUBLE_EQ(contentionFactor(1, WorkloadMix::LockStep), 1.0);
    EXPECT_DOUBLE_EQ(contentionFactor(2, WorkloadMix::LockStep), 1.05);
    EXPECT_DOUBLE_EQ(contentionFactor(3, WorkloadMix::LockStep), 1.10);
    EXPECT_DOUBLE_EQ(contentionFactor(4, WorkloadMix::LockStep), 1.15);
}

TEST(MultiCpu, ContentionFactorMonotoneAndOrdered)
{
    machine::MemoryConfig mem = paperMachine().memory;
    double prev_i = 0.0, prev_l = 0.0, prev_q = 0.0;
    for (int cpus = 1; cpus <= 8; ++cpus) {
        double fi = contentionFactor(cpus, WorkloadMix::Independent);
        double fl = contentionFactor(cpus, WorkloadMix::LockStep);
        double fq = contentionFactorQueueing(cpus, mem);
        EXPECT_GE(fi, 1.0) << cpus;
        EXPECT_GE(fl, 1.0) << cpus;
        EXPECT_GE(fq, 1.0) << cpus;
        EXPECT_GT(fi, prev_i) << cpus;
        EXPECT_GT(fl, prev_l) << cpus;
        EXPECT_GE(fq, prev_q) << cpus;
        // Phase-locked fleets never contend more than independent
        // ones (equality only when alone).
        if (cpus > 1)
            EXPECT_LT(fl, fi) << cpus;
        prev_i = fi;
        prev_l = fl;
        prev_q = fq;
    }
}

TEST(MultiCpu, ScalarKernelUtilizationIsExact)
{
    // LFK5 runs on the scalar unit: every access holds the port for
    // two cycles but the recurrence serializes compute between them,
    // so exact occupancy sits well below saturation. The retired
    // heuristic (loadStorePipeBusy + 2*scalarMemAccesses) overcounted
    // and could exceed the cycle count entirely.
    JobSet solo({5});
    MultiCpuResult r = runMultiCpu(solo.jobs, paperMachine());
    ASSERT_TRUE(r.converged);
    ASSERT_EQ(r.utilization.size(), 1u);
    const RunStats &st = r.stats[0];
    EXPECT_GT(st.scalarMemAccesses, 0u);
    EXPECT_LE(st.portBusyCycles, st.cycles);
    EXPECT_DOUBLE_EQ(r.utilization[0], st.portBusyCycles / st.cycles);
    EXPECT_GT(r.utilization[0], 0.0);
    EXPECT_LT(r.utilization[0], 1.0);
}

TEST(MultiCpu, DeterministicAcrossRuns)
{
    JobSet a({1, 3});
    JobSet b({1, 3});
    MultiCpuResult ra = runMultiCpu(a.jobs, paperMachine());
    MultiCpuResult rb = runMultiCpu(b.jobs, paperMachine());
    EXPECT_DOUBLE_EQ(ra.stats[0].cycles, rb.stats[0].cycles);
    EXPECT_DOUBLE_EQ(ra.factor[1], rb.factor[1]);
}

} // namespace
} // namespace macs::sim
