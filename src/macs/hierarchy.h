/**
 * @file
 * The full MACS hierarchy for one kernel (paper Figure 1): calculated
 * bounds (MA, MAC, MACS and the reduced f/m bounds) plus measured
 * times (t_p and the A/X pair) from the simulator, with gap analysis
 * in the style of paper section 4.4.
 */

#ifndef MACS_MACS_HIERARCHY_H
#define MACS_MACS_HIERARCHY_H

#include <functional>
#include <string>

#include "isa/program.h"
#include "machine/machine_config.h"
#include "macs/bounds.h"
#include "macs/macs_bound.h"
#include "macs/workload.h"
#include "sim/simulator.h"

namespace macs::model {

/**
 * A kernel prepared for analysis: the compiled program, the
 * source-level (MA) workload, and how to normalize measurements.
 */
struct KernelCase
{
    std::string name;
    isa::Program program;
    WorkloadCounts ma;          ///< source counts, perfect index analysis
    int sourceFlopsPerPoint = 0;///< f_a + f_m of the high-level code
    long points = 0;            ///< result elements computed per run
    /** Initialize simulator registers/memory before running. */
    std::function<void(sim::Simulator &)> setup;
};

/** Everything the paper's Tables 2-5 need for one kernel. */
struct KernelAnalysis
{
    std::string name;

    // Workloads (Table 2).
    WorkloadCounts ma;
    WorkloadCounts mac;

    // Calculated bounds in CPL (Table 3).
    PipeBound maBound;       ///< t_f, t_m, t_MA
    PipeBound macBound;      ///< t_f', t_m', t_MAC
    MacsResult macs;         ///< t_MACS
    MacsResult macsFOnly;    ///< t_MACS^f
    MacsResult macsMOnly;    ///< t_MACS^m

    // Measured (simulated) times in CPL (Tables 4 and 5).
    double tP = 0.0;         ///< full code
    double tA = 0.0;         ///< access-only code (vector FP removed)
    double tX = 0.0;         ///< execute-only code (vector memory removed)

    sim::RunStats fullStats;
    sim::RunStats aStats;
    sim::RunStats xStats;

    int sourceFlopsPerPoint = 0;
    long points = 0;

    /** Convert a CPL figure of this kernel to CPF. */
    double cpf(double cpl) const;

    /** CPF shortcuts for the Table 4 columns. @{ */
    double maCpf() const { return cpf(maBound.bound); }
    double macCpf() const { return cpf(macBound.bound); }
    double macsCpf() const { return cpf(macs.cpl); }
    double actualCpf() const { return cpf(tP); }
    /** @} */
};

/**
 * Canonical text serialization of everything about @p kernel that
 * determines its analysis result: name, assembled program text, MA
 * workload, and the normalization constants. The batch pipeline
 * (src/pipeline) hashes this as the program component of its
 * memoization cache key.
 *
 * Note: KernelCase::setup is intentionally NOT part of the
 * fingerprint (a std::function has no canonical serialization). The
 * pipeline's cache contract therefore requires setup to be a pure
 * function of the kernel identity — true of every lfk:: kernel, whose
 * initializers are deterministic in the kernel name. See
 * docs/PIPELINE.md.
 */
std::string fingerprint(const KernelCase &kernel);

/**
 * Run the whole hierarchy for @p kernel on @p config: evaluate MA, MAC
 * and the three MACS bounds on the inner loop, then simulate the full,
 * A-process, and X-process codes.
 */
KernelAnalysis analyzeKernel(const KernelCase &kernel,
                             const machine::MachineConfig &config,
                             const sim::SimOptions &options = {});

/**
 * Render a human-readable hierarchy report with gap percentages and
 * the section-4.4-style diagnosis of where run time is lost.
 */
std::string renderReport(const KernelAnalysis &analysis,
                         const machine::MachineConfig &config);

} // namespace macs::model

#endif // MACS_MACS_HIERARCHY_H
