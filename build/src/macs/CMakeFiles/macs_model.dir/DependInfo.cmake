
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/macs/ax_transform.cc" "src/macs/CMakeFiles/macs_model.dir/ax_transform.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/ax_transform.cc.o.d"
  "/root/repo/src/macs/bounds.cc" "src/macs/CMakeFiles/macs_model.dir/bounds.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/bounds.cc.o.d"
  "/root/repo/src/macs/chime.cc" "src/macs/CMakeFiles/macs_model.dir/chime.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/chime.cc.o.d"
  "/root/repo/src/macs/hierarchy.cc" "src/macs/CMakeFiles/macs_model.dir/hierarchy.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/hierarchy.cc.o.d"
  "/root/repo/src/macs/macs_bound.cc" "src/macs/CMakeFiles/macs_model.dir/macs_bound.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/macs_bound.cc.o.d"
  "/root/repo/src/macs/macsd.cc" "src/macs/CMakeFiles/macs_model.dir/macsd.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/macsd.cc.o.d"
  "/root/repo/src/macs/report_md.cc" "src/macs/CMakeFiles/macs_model.dir/report_md.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/report_md.cc.o.d"
  "/root/repo/src/macs/workload.cc" "src/macs/CMakeFiles/macs_model.dir/workload.cc.o" "gcc" "src/macs/CMakeFiles/macs_model.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/macs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/macs_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/macs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/macs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lfk/CMakeFiles/macs_paperref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
