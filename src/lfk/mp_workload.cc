#include "lfk/mp_workload.h"

#include "support/logging.h"
#include "support/strings.h"

namespace macs::lfk {

namespace {

// Per-CPU decor constants; CPU 0 always gets zero skew, preserving
// the 1-CPU bit-identity contract.
//
// Independent: time and address offsets co-prime to the 32-bank
// geometry keep unrelated processes drifting through each other's
// bank phases instead of locking into a fixed relation. Together
// with MemoryConfig::arbitrationRestartCycles they are calibrated so
// four memory-saturated copies land in the paper's 56-64 ns
// per-access band (bench/mp_contention.cc pins it).
constexpr double kIndependentTimeSkewCycles = 15.0;
constexpr int64_t kIndependentAddrSkewWords = 17;
// Lock step: 8-word spacing is one bank-busy window — the unique
// collision-free interleave of four full-rate streams on 32 banks
// (4 CPUs x 8-cycle busy = 32 banks, zero slack). This IS the
// paper's "fall into lock step" steady state. The geometry is
// bistable: any misaligned spacing can never re-align through the
// arbitration-restart push (which spaces colliders busy+restart
// apart, overshooting the exact 8-bank slot) and thrashes at
// independent-like degradation instead; docs/MULTICPU.md discusses
// the honesty of both regimes.
constexpr int64_t kLockStepAddrSkewWords = 8;

} // namespace

const char *
mpMixName(MpMix mix)
{
    switch (mix) {
      case MpMix::Independent:
        return "independent";
      case MpMix::LockStep:
        return "lockstep";
      case MpMix::Strip:
        return "strip";
    }
    return "independent";
}

bool
parseMpMix(const std::string &text, MpMix &out)
{
    if (text == "independent") {
        out = MpMix::Independent;
        return true;
    }
    if (text == "lockstep") {
        out = MpMix::LockStep;
        return true;
    }
    if (text == "strip") {
        out = MpMix::Strip;
        return true;
    }
    return false;
}

bool
toWorkloadMix(MpMix mix, sim::WorkloadMix &out)
{
    switch (mix) {
      case MpMix::Independent:
        out = sim::WorkloadMix::Independent;
        return true;
      case MpMix::LockStep:
        out = sim::WorkloadMix::LockStep;
        return true;
      case MpMix::Strip:
        return false;
    }
    return false;
}

MpWorkload
buildMpWorkload(int kernel_id, MpMix mix, int cpus)
{
    MACS_ASSERT(cpus >= 1, "CPU count must be positive");
    MpWorkload w;
    w.mix = mix;

    if (mix == MpMix::Strip) {
        Kernel full = makeKernel(kernel_id);
        if (!full.remake)
            fatal(full.name,
                  " is hand-assembled and cannot be strip-mined "
                  "(only DSL-compiled kernels: LFK 1, 3, 5, 7, 8, 9, "
                  "11, 12)");
        long n = full.points;
        MACS_ASSERT(static_cast<long>(cpus) <= n,
                    "more CPUs than loop iterations");
        long base = n / cpus, rem = n % cpus, offset = 0;
        for (int i = 0; i < cpus; ++i) {
            long trip = base + (i < rem ? 1 : 0);
            Kernel chunk = full.remake(trip);
            // Chunk programs share the full kernel's data symbols;
            // re-attach its setup and drop the full-space check.
            chunk.setup = full.setup;
            chunk.description = full.description;
            chunk.name = format("%s[%d/%d]", full.name.c_str(), i + 1,
                                cpus);
            w.kernels.push_back(std::move(chunk));
            sim::mp::CoupledJob job;
            job.label = w.kernels.back().name;
            job.setup = w.kernels.back().setup;
            // The slice's base offset in words models chunk i
            // streaming from its own part of the arrays.
            job.addressSkewWords = offset;
            w.jobs.push_back(std::move(job));
            offset += trip;
        }
    } else {
        for (int i = 0; i < cpus; ++i) {
            Kernel copy = makeKernel(kernel_id);
            w.kernels.push_back(std::move(copy));
            sim::mp::CoupledJob job;
            job.label = w.kernels.back().name;
            job.setup = w.kernels.back().setup;
            if (mix == MpMix::Independent) {
                job.timeSkewCycles = kIndependentTimeSkewCycles * i;
                job.addressSkewWords = kIndependentAddrSkewWords * i;
            } else {
                job.addressSkewWords = kLockStepAddrSkewWords * i;
            }
            w.jobs.push_back(std::move(job));
        }
    }

    // Bind program pointers only after the kernel vector is final.
    for (size_t i = 0; i < w.jobs.size(); ++i)
        w.jobs[i].program = &w.kernels[i].program;
    return w;
}

MpWorkload
buildMpMixedWorkload(const std::vector<int> &kernel_ids)
{
    MACS_ASSERT(!kernel_ids.empty(), "mixed workload needs kernels");
    MpWorkload w;
    w.mix = MpMix::Independent;
    for (size_t i = 0; i < kernel_ids.size(); ++i) {
        Kernel k = makeKernel(kernel_ids[i]);
        w.kernels.push_back(std::move(k));
        sim::mp::CoupledJob job;
        job.label = w.kernels.back().name;
        job.setup = w.kernels.back().setup;
        job.timeSkewCycles =
            kIndependentTimeSkewCycles * static_cast<double>(i);
        job.addressSkewWords =
            kIndependentAddrSkewWords * static_cast<int64_t>(i);
        w.jobs.push_back(std::move(job));
    }
    for (size_t i = 0; i < w.jobs.size(); ++i)
        w.jobs[i].program = &w.kernels[i].program;
    return w;
}

} // namespace macs::lfk
