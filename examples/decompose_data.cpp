/**
 * @file
 * Data-decomposition walkthrough with MACS-D: take a column sweep over
 * a matrix whose leading dimension collides with the memory banks,
 * watch the plain MACS bound miss the problem, use MACS-D to quantify
 * it, then fix it by padding the leading dimension — the workflow the
 * paper's "fifth degree of freedom D" remark envisions.
 */

#include <cstdio>
#include <string>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "macs/macsd.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

namespace {

using namespace macs;

/** Column sweep m(j, k) = 2 m(j, k): ld + mul + st at the row stride. */
void
study(int leading_dim)
{
    std::string dsl = "DO k\n mcol(" + std::to_string(leading_dim) +
                      "*k) = c2*mcol(" + std::to_string(leading_dim) +
                      "*k)\nEND";
    compiler::CompileOptions opt;
    opt.tripCount = 128;
    opt.arrays = {{"mcol", static_cast<size_t>(128 * leading_dim + 8)}};
    compiler::CompileResult res =
        compiler::compile(compiler::parseLoop(dsl), opt);

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    model::MacsResult plain =
        model::evaluateMacs(res.program.innerLoop(), cfg);
    model::MacsDResult d = model::evaluateMacsD(res.program, cfg);

    sim::Simulator sim(cfg, res.program);
    sim.memory().fillDoubles(
        "mcol",
        std::vector<double>(static_cast<size_t>(128 * leading_dim + 8),
                            1.0));
    sim.memory().fillDoubles("scalar_c2", {2.0});
    double measured = sim.run().cycles / 128.0;

    std::printf("leading dimension %3d: t_MACS %5.2f   t_MACS-D %5.2f "
                "(memory rate %.0f)   measured %5.2f CPL\n",
                leading_dim, plain.cpl, d.macs.cpl, d.worstMemoryRate,
                measured);
}

} // namespace

int
main()
{
    std::printf(
        "Column sweep over a matrix stored with leading dimension L on\n"
        "the C-240's 32 banks (bank busy 8). Each element is loaded,\n"
        "scaled, and stored back at stride L words:\n\n");

    for (int ld : {30, 31, 32, 33, 34, 48, 64})
        study(ld);

    std::printf(
        "\nPlain MACS cannot distinguish the rows: it assumes every\n"
        "stream sustains one element per clock. MACS-D binds the\n"
        "stride, charges the interleave rate, and matches the machine:\n"
        "L = 32 and 64 collapse onto one bank (8 cycles/element), L = 48\n"
        "onto two. Padding the leading dimension to 33 — one wasted\n"
        "word per row — restores full speed. That decision is now a\n"
        "bound computation instead of folklore.\n");
    return 0;
}
