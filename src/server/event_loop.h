/**
 * @file
 * The sharded event-loop core of `macs serve` (docs/SERVER.md).
 *
 * EventLoopCore runs a small number of shards, each a thread around
 * an edge-triggered EventPoller (epoll on Linux, poll(2) fallback)
 * owning a set of non-blocking connections. The acceptor hands
 * admitted fds to shards round-robin; each shard drives the
 * per-connection state machine (server/connection.h), dispatches
 * complete requests to the compute ThreadPool, and is woken through a
 * Wakeup doorbell when a worker posts the finished response back.
 *
 * Contracts preserved from the thread-per-session core, verbatim:
 * admission backpressure (503 + Retry-After decided at accept), the
 * net-read / net-write fault sites firing once per parsed request /
 * per response delivery, per-request read deadlines (408 on a torn or
 * trickled request, silent close when idle), response write
 * deadlines, graceful drain (in-flight requests finish and are
 * answered `Connection: close`), and byte-identical response bodies.
 */

#ifndef MACS_SERVER_EVENT_LOOP_H
#define MACS_SERVER_EVENT_LOOP_H

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "server/poller.h"

namespace macs::server {

class Server;

class EventLoopCore
{
  public:
    /**
     * @param server      owner; outlives the core.
     * @param shard_count number of event-loop shards (>= 1).
     * @param backend     poller backend (Default = epoll on Linux).
     */
    EventLoopCore(Server &server, size_t shard_count,
                  EventPoller::Backend backend);
    ~EventLoopCore();

    EventLoopCore(const EventLoopCore &) = delete;
    EventLoopCore &operator=(const EventLoopCore &) = delete;

    /** Start one thread per shard. */
    void start();

    /**
     * Hand an accepted connection to the next shard (round-robin).
     * Called from the acceptor thread after admission control.
     */
    void adopt(int fd);

    /** Wake every shard so it observes Server::stopping(). */
    void requestStop();

    /**
     * Join the shard threads. Each shard exits once it is stopping,
     * owns no connections, and has applied every in-flight compute
     * completion — i.e. after the graceful drain finished.
     */
    void join();

    /** Live connections across all shards. */
    size_t connectionCount() const
    {
        return connections_.load(std::memory_order_acquire);
    }

    size_t shardCount() const { return shards_.size(); }

  private:
    class Shard;
    friend class Shard;

    Server &server_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<size_t> nextShard_{0};
    std::atomic<size_t> connections_{0};
};

} // namespace macs::server

#endif // MACS_SERVER_EVENT_LOOP_H
