#!/usr/bin/env bash
# Tier-1 verification: normal build + full test suite, then the
# concurrency layer (pipeline + golden reporters) under ThreadSanitizer
# and AddressSanitizer Debug builds.
#
# Usage: scripts/check.sh [--fast]
#   --fast  skip the sanitizer stages (normal build + ctest only)
#
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "== tier-1: ctest -j =="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
    echo "== skipping sanitizer stages (--fast) =="
    exit 0
fi

# The sanitizer stages build only what the concurrency tests need and
# run the pipeline + golden tests (the TSan stage is what exercises the
# thread-safety audit of support logging and the worker pool).
sanitize_stage() {
    local kind="$1" dir="build-$1"
    echo "== sanitizer: $kind =="
    cmake -B "$dir" -S . \
        -DCMAKE_BUILD_TYPE=Debug -DMACS_SANITIZE="$kind" >/dev/null
    cmake --build "$dir" -j "$JOBS" \
        --target pipeline_test golden_report_test
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" \
        -R 'PipelineTest|GoldenReportTest'
}

sanitize_stage thread
sanitize_stage address

echo "== all checks passed =="
