/**
 * @file
 * ASCII table and CSV rendering used by the benchmark harnesses to print
 * paper-style tables (Table 1..5) and by the report generator.
 *
 * Cells are strings; convenience overloads format integers and doubles.
 * Column widths are computed from content; alignment is per column.
 */

#ifndef MACS_SUPPORT_TABLE_H
#define MACS_SUPPORT_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace macs {

/** Horizontal alignment of a table column. */
enum class Align { Left, Right };

/**
 * A simple text table builder.
 *
 * Usage:
 * @code
 *   Table t({"LFK", "t_MA", "t_MAC"});
 *   t.addRow({"1", Table::num(0.600), Table::num(0.800)});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** Construct with header labels; all columns default to Right except
     *  the first, which defaults to Left. */
    explicit Table(std::vector<std::string> header);

    /** Override the alignment of column @p col. */
    void setAlign(size_t col, Align align);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line at the current position. */
    void addSeparator();

    /** Render the table with box-drawing dashes and column padding. */
    std::string render() const;

    /** Render as CSV (no separators, quoted only when necessary). */
    std::string renderCsv() const;

    /** Format @p v with @p decimals fraction digits. */
    static std::string num(double v, int decimals = 3);

    /** Format an integer. */
    static std::string num(long v);

    size_t rows() const { return rows_.size(); }
    size_t columns() const { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<size_t> separators_; // row indices preceded by a rule
};

} // namespace macs

#endif // MACS_SUPPORT_TABLE_H
