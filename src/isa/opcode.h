/**
 * @file
 * Opcode definitions for the modeled subset of the Convex C-240 ISA.
 *
 * The vector processor has three pipelined function units; every vector
 * instruction executes on exactly one of them:
 *  - LoadStore: the single memory interface of the VP,
 *  - Add: additions, subtractions, negation, population counts, shifts,
 *    logical ops, conversions, and reductions,
 *  - Multiply: multiplications, divisions, square roots.
 *
 * Scalar instructions execute on the Address/Scalar Unit (ASU). Scalar
 * loads and stores share the single CPU memory port with the vector
 * LoadStore pipe (this is what makes scalar memory accesses split
 * chimes, paper section 3.3).
 */

#ifndef MACS_ISA_OPCODE_H
#define MACS_ISA_OPCODE_H

#include <cstdint>
#include <optional>
#include <string>

namespace macs::isa {

/** Function unit a vector instruction executes on. */
enum class Pipe : uint8_t
{
    None,      ///< not a vector-pipe instruction (scalar/control)
    LoadStore, ///< VP memory interface
    Add,       ///< add/logical/reduction pipe
    Multiply,  ///< multiply/divide pipe
};

/** Broad operation class used by workload counting and A/X transforms. */
enum class OpKind : uint8_t
{
    VectorLoad,   ///< vector memory read
    VectorStore,  ///< vector memory write
    VectorFpAdd,  ///< vector FP op on the Add pipe
    VectorFpMul,  ///< vector FP op on the Multiply pipe
    ScalarMem,    ///< scalar load/store (uses the CPU memory port)
    ScalarAlu,    ///< scalar integer arithmetic / moves / compares
    ScalarFp,     ///< scalar floating point on the ASU
    Control,      ///< branches
    SetVl,        ///< write the VL register
};

/** Instruction opcodes. */
enum class Opcode : uint8_t
{
    // Vector memory (unit stride and strided forms).
    VLd,    ///< ld.l  mem,vD          vector load, unit stride
    VSt,    ///< st.l  vS,mem          vector store, unit stride
    VLdS,   ///< lds.l mem,sK,vD       vector load, stride (words) in sK
    VStS,   ///< sts.l vS,sK,mem       vector store, stride in sK

    // Vector arithmetic; operands may be v-regs or one s-reg (broadcast).
    VAdd,   ///< add.d a,b,vD
    VSub,   ///< sub.d a,b,vD
    VMul,   ///< mul.d a,b,vD
    VDiv,   ///< div.d a,b,vD
    VNeg,   ///< neg.d vS,vD
    VSum,   ///< sum.d vS,sD           reduction: sD += sum of vS elements

    // Scalar / ASU.
    SLd,    ///< ld.w  mem,sD or aD    scalar load (64-bit)
    SSt,    ///< st.w  sS,mem          scalar store
    SAdd,   ///< add.w a,b,sD  / add.w #imm,rD (two-operand increment)
    SSub,   ///< sub.w ...
    SMul,   ///< mul.w ...
    SFAdd,  ///< add.d a,b,sD   scalar FP (all-scalar operands)
    SFSub,  ///< sub.d a,b,sD
    SFMul,  ///< mul.d a,b,sD
    SFDiv,  ///< div.d a,b,sD
    SMov,   ///< mov   src,dst         register or #imm move; dst may be VL
    SLt,    ///< lt.w  a,b             test flag := (a < b)
    SLe,    ///< le.w  a,b             test flag := (a <= b)
    BrT,    ///< jbrs.t label          branch if test flag set
    BrF,    ///< jbrs.f label          branch if test flag clear
    Jmp,    ///< jbra   label          unconditional branch
    Nop,    ///< no operation
};

/** Number of distinct opcodes (for table sizing). */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::Nop) + 1;

/** Static properties of an opcode. */
struct OpcodeInfo
{
    Opcode op;
    const char *mnemonic; ///< assembly mnemonic including suffix
    Pipe pipe;            ///< vector pipe, or Pipe::None
    OpKind kind;
};

/** Look up static properties. Never fails for a valid enumerator. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Look up an opcode by mnemonic; std::nullopt when unknown. */
std::optional<Opcode> opcodeFromMnemonic(const std::string &mnemonic);

/** True for any instruction executed by the vector processor. */
bool isVectorOp(Opcode op);
/** True for vector loads and stores (unit stride or strided). */
bool isVectorMem(Opcode op);
/** True for vector FP arithmetic (Add or Multiply pipe). */
bool isVectorFp(Opcode op);
/** True for scalar loads/stores (they contend for the memory port). */
bool isScalarMem(Opcode op);
/** True for scalar floating point (ASU) arithmetic. */
bool isScalarFp(Opcode op);
/** True for control transfer instructions. */
bool isControl(Opcode op);

} // namespace macs::isa

#endif // MACS_ISA_OPCODE_H
