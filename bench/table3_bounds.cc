/**
 * @file
 * Reproduces paper Table 3: the component terms and bounds in CPL —
 * t_f, t_f', t_MACS^f on the FP side, t_m, t_m', t_MACS^m on the
 * memory side, and t_MA, t_MAC, t_MACS overall — plus the section 3.5
 * worked example (LFK1 chime derivation).
 */

#include <cstdio>

#include "bench_util.h"
#include "isa/parser.h"
#include "macs/chime.h"
#include "macs/macs_bound.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace macs;
    bool csv = argc > 1 && std::string(argv[1]) == "--csv";
    using namespace macs::bench;

    std::printf("=== Table 3: Performance bounds (CPL) ===\n\n");

    Table t({"LFK", "t_f", "t_f'", "tMACS^f", "t_m", "t_m'", "tMACS^m",
             "t_MA", "t_MAC", "t_MACS", "paper t_MACS"});
    for (int id : lfk::lfkIds()) {
        const auto &a = allAnalyses().at(id);
        const auto &ref = paperReference().at(id);
        t.addRow({"LFK" + std::to_string(id),
                  Table::num((long)a.maBound.tF),
                  Table::num((long)a.macBound.tF),
                  Table::num(a.macsFOnly.cpl, 2),
                  Table::num((long)a.maBound.tM),
                  Table::num((long)a.macBound.tM),
                  Table::num(a.macsMOnly.cpl, 2),
                  Table::num(a.maBound.bound, 0),
                  Table::num(a.macBound.bound, 0),
                  Table::num(a.macs.cpl, 2),
                  Table::num(ref.macsCpl, 2)});
    }
    std::printf("%s\n", csv ? t.renderCsv().c_str() : t.render().c_str());

    // ---- section 3.5 worked example ----
    std::printf("=== Worked example (section 3.5): LFK1 chime "
                "derivation ===\n\n");
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    isa::Program paper = isa::assemble(lfk::lfk1PaperListing());
    auto body = paper.innerLoop();
    model::MacsResult r = model::evaluateMacs(body, cfg);
    std::printf("%s", model::renderChimes(body, r.chimes).c_str());
    std::printf("\nchime costs: ");
    for (size_t i = 0; i < r.chimeCycles.size(); ++i)
        std::printf("%s%.0f", i ? " + " : "", r.chimeCycles[i]);
    std::printf(" = %.0f cycles (paper: 131+132+132+132 = 527)\n",
                r.rawCycles);
    std::printf("with refresh penalty: %.2f cycles (paper: 537.54)\n",
                r.cycles);
    std::printf("t_MACS = %.4f CPL = %.3f CPF "
                "(paper: 4.200 CPL = 0.840 CPF)\n",
                r.cpl, r.cpl / 5.0);
    return 0;
}
