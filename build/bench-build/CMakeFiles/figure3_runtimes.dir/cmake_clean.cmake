file(REMOVE_RECURSE
  "../bench/figure3_runtimes"
  "../bench/figure3_runtimes.pdb"
  "CMakeFiles/figure3_runtimes.dir/figure3_runtimes.cc.o"
  "CMakeFiles/figure3_runtimes.dir/figure3_runtimes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
