#include "compiler/interpreter.h"

#include <algorithm>

#include "support/logging.h"

namespace macs::compiler {

namespace {

double &
elementAt(Environment &env, const std::string &name, long index)
{
    auto it = env.arrays.find(name);
    if (it == env.arrays.end())
        fatal("interpreter: undeclared array '", name, "'");
    if (index < 0 || index >= static_cast<long>(it->second.size()))
        fatal("interpreter: ", name, "(", index, ") out of range [0, ",
              it->second.size(), ")");
    return it->second[static_cast<size_t>(index)];
}

double
scalarAt(const Environment &env, const std::string &name)
{
    auto it = env.scalars.find(name);
    if (it == env.scalars.end())
        fatal("interpreter: undeclared scalar '", name, "'");
    return it->second;
}

double
eval(const Expr &e, Environment &env, long k)
{
    switch (e.kind) {
      case Expr::Kind::Number:
        return e.number;
      case Expr::Kind::Scalar:
        return scalarAt(env, e.name);
      case Expr::Kind::Array:
        return elementAt(env, e.name, e.coef * k + e.offset);
      case Expr::Kind::Add:
        return eval(*e.lhs, env, k) + eval(*e.rhs, env, k);
      case Expr::Kind::Sub:
        return eval(*e.lhs, env, k) - eval(*e.rhs, env, k);
      case Expr::Kind::Mul:
        return eval(*e.lhs, env, k) * eval(*e.rhs, env, k);
      case Expr::Kind::Div:
        return eval(*e.lhs, env, k) / eval(*e.rhs, env, k);
      case Expr::Kind::Neg:
        return -eval(*e.lhs, env, k);
    }
    panic("unreachable expression kind");
}

void
execute(const Stmt &s, Environment &env, long k)
{
    if (s.arrayDst) {
        double v = eval(*s.rhs, env, k);
        elementAt(env, s.dstName, s.dstCoef * k + s.dstOffset) = v;
    } else {
        // Reductions and general scalar assignments both reduce to
        // "evaluate rhs, store into the scalar".
        double v = eval(*s.rhs, env, k);
        if (!env.scalars.count(s.dstName))
            fatal("interpreter: undeclared scalar '", s.dstName, "'");
        env.scalars[s.dstName] = v;
    }
}

} // namespace

void
interpret(const Loop &loop, long trip, Environment &env)
{
    MACS_ASSERT(trip >= 0, "negative trip count");
    for (long j = 0; j < trip; ++j) {
        long k = j * loop.stride;
        for (const auto &s : loop.stmts)
            execute(s, env, k);
    }
}

void
interpretVector(const Loop &loop, long trip, Environment &env, int vl)
{
    MACS_ASSERT(trip >= 0, "negative trip count");
    MACS_ASSERT(vl >= 1, "vector length must be positive");
    for (long strip = 0; strip < trip; strip += vl) {
        long len = std::min<long>(vl, trip - strip);
        for (const auto &s : loop.stmts) {
            if (!s.arrayDst && s.isReduction()) {
                // Strip-order reduction: partial sum of the term, then
                // one accumulate — matching sum.d semantics.
                const Expr *term = s.reductionTerm();
                double partial = 0.0;
                for (long j = 0; j < len; ++j)
                    partial += eval(*term, env, (strip + j) * loop.stride);
                double acc = scalarAt(env, s.dstName);
                env.scalars[s.dstName] =
                    s.rhs->kind == Expr::Kind::Sub ? acc - partial
                                                   : acc + partial;
                continue;
            }
            // Vector semantics: evaluate the whole strip's rhs before
            // any element is written.
            std::vector<double> values(static_cast<size_t>(len));
            for (long j = 0; j < len; ++j)
                values[static_cast<size_t>(j)] =
                    eval(*s.rhs, env, (strip + j) * loop.stride);
            if (s.arrayDst) {
                for (long j = 0; j < len; ++j) {
                    long k = (strip + j) * loop.stride;
                    elementAt(env, s.dstName,
                              s.dstCoef * k + s.dstOffset) =
                        values[static_cast<size_t>(j)];
                }
            } else {
                fatal("interpreter: non-reduction scalar statement in "
                      "vector semantics");
            }
        }
    }
}

} // namespace macs::compiler
