/**
 * @file
 * Calibration-framework tests: the fitted Z/B/startup parameters must
 * recover the machine description they were measured on (closing the
 * loop on paper section 3.2 / Table 1).
 */

#include <gtest/gtest.h>

#include "calib/calibration.h"
#include "machine/machine_config.h"
#include "support/logging.h"

namespace macs::calib {
namespace {

using isa::Opcode;

machine::MachineConfig
quiet()
{
    // Refresh off so fits are exact; the Table 1 bench reports both.
    return machine::MachineConfig::noRefresh();
}

class CalibratedOpcode : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(CalibratedOpcode, ZRecoversTable1)
{
    machine::MachineConfig cfg = quiet();
    CalibrationResult r = calibrate(GetParam(), cfg);
    EXPECT_NEAR(r.zFit, cfg.timing(GetParam()).z, 0.02)
        << "fitted Z diverges from the machine's Z";
}

TEST_P(CalibratedOpcode, BRecoversTable1)
{
    machine::MachineConfig cfg = quiet();
    CalibrationResult r = calibrate(GetParam(), cfg);
    // The steady-state intercept is the instruction's own bubble plus
    // the masked loop control; allow a small tolerance.
    EXPECT_NEAR(r.bFit, cfg.timing(GetParam()).bubble, 1.5);
}

TEST_P(CalibratedOpcode, FitIsNearlyExact)
{
    CalibrationResult r = calibrate(GetParam(), quiet());
    EXPECT_LT(r.rss, 1.0);
}

TEST_P(CalibratedOpcode, StartupApproximatesXPlusY)
{
    machine::MachineConfig cfg = quiet();
    CalibrationResult r = calibrate(GetParam(), cfg);
    const auto &t = cfg.timing(GetParam());
    EXPECT_NEAR(r.startupFit, t.x + t.y, 6.0);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CalibratedOpcode, ::testing::ValuesIn(table1Opcodes()),
    [](const auto &info) {
        return std::string(isa::opcodeInfo(info.param).mnemonic)
            .substr(0, std::string(isa::opcodeInfo(info.param).mnemonic)
                           .find('.'));
    });

TEST(Calibration, Table1CoversPaperInstructions)
{
    auto ops = table1Opcodes();
    EXPECT_EQ(ops.size(), 8u);
}

TEST(Calibration, RefreshInflatesMemorySlopes)
{
    CalibrationResult off = calibrate(Opcode::VLd, quiet());
    CalibrationResult on =
        calibrate(Opcode::VLd, machine::MachineConfig::convexC240());
    EXPECT_GT(on.zFit + on.bFit / 128.0, off.zFit + off.bFit / 128.0);
}

TEST(Calibration, LoopGeneratorShapes)
{
    isa::Program p = makeCalibrationLoop(Opcode::VAdd, 64, 10, 4);
    p.validate();
    auto body = p.innerLoop();
    int vadds = 0;
    for (const auto &in : body)
        if (in.op == Opcode::VAdd)
            ++vadds;
    EXPECT_EQ(vadds, 4);
}

TEST(Calibration, LoopGeneratorRejectsBadParameters)
{
    EXPECT_THROW(makeCalibrationLoop(Opcode::VAdd, 0, 10), PanicError);
    EXPECT_THROW(makeCalibrationLoop(Opcode::VAdd, 64, 0), PanicError);
    EXPECT_THROW(makeCalibrationLoop(Opcode::SMov, 64, 10), FatalError);
}

TEST(Calibration, CalibrateAllReturnsAllOpcodes)
{
    auto all = calibrateAll(quiet());
    EXPECT_EQ(all.size(), table1Opcodes().size());
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].op, table1Opcodes()[i]);
}

TEST(Calibration, ReductionSlopeIsConservative135)
{
    CalibrationResult r = calibrate(Opcode::VSum, quiet());
    // Paper: calibration put reduction Z between 1.39 and 1.43; the
    // model uses 1.35. Our loop measures the modeled machine.
    EXPECT_NEAR(r.zFit, 1.35, 0.02);
}

TEST(Calibration, DivideSlopeIsFour)
{
    CalibrationResult r = calibrate(Opcode::VDiv, quiet());
    EXPECT_NEAR(r.zFit, 4.0, 0.05);
}

} // namespace
} // namespace macs::calib
