/**
 * @file
 * Unit tests for the memory substrate: functional MemoryImage and the
 * MemoryPort timing model (stride/bank conflicts, refresh, contention).
 */

#include <gtest/gtest.h>

#include "isa/program.h"
#include "sim/contention.h"
#include "sim/memory_image.h"
#include "sim/memory_port.h"
#include "support/logging.h"

namespace macs::sim {
namespace {

isa::Program
twoSymbolProgram()
{
    isa::Program p;
    p.defineData("a", 10);
    p.defineData("b", 4);
    return p;
}

// ---------------------------------------------------------------- image

TEST(MemoryImage, SymbolsLaidOutInOrderAligned)
{
    isa::Program p = twoSymbolProgram();
    MemoryImage m(p);
    uint64_t a = m.symbolBase("a");
    uint64_t b = m.symbolBase("b");
    EXPECT_LT(a, b);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b - a, 80u); // 10 words
}

TEST(MemoryImage, UnknownSymbolIsFatal)
{
    isa::Program p = twoSymbolProgram();
    MemoryImage m(p);
    EXPECT_THROW(m.symbolBase("ghost"), FatalError);
}

TEST(MemoryImage, WordReadWriteRoundTrip)
{
    MemoryImage m(twoSymbolProgram());
    uint64_t addr = m.symbolBase("a");
    m.writeWord(addr, 0xDEADBEEFull);
    EXPECT_EQ(m.readWord(addr), 0xDEADBEEFull);
}

TEST(MemoryImage, DoubleReadWriteRoundTrip)
{
    MemoryImage m(twoSymbolProgram());
    uint64_t addr = m.symbolBase("b");
    m.writeDouble(addr, 3.25);
    EXPECT_DOUBLE_EQ(m.readDouble(addr), 3.25);
}

TEST(MemoryImage, ZeroInitialized)
{
    MemoryImage m(twoSymbolProgram());
    EXPECT_EQ(m.readWord(m.symbolBase("a")), 0u);
}

TEST(MemoryImage, UnalignedAccessIsFatal)
{
    MemoryImage m(twoSymbolProgram());
    EXPECT_THROW(m.readWord(m.symbolBase("a") + 3), FatalError);
}

TEST(MemoryImage, OutOfBoundsIsFatal)
{
    MemoryImage m(twoSymbolProgram());
    EXPECT_THROW(m.readWord(m.sizeBytes() + 64), FatalError);
}

TEST(MemoryImage, FillAndReadDoubles)
{
    MemoryImage m(twoSymbolProgram());
    m.fillDoubles("a", {1.0, 2.0, 3.0});
    auto v = m.readDoubles("a", 2, 1);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 2.0);
    EXPECT_DOUBLE_EQ(v[1], 3.0);
}

TEST(MemoryImage, FillWordsRaw)
{
    MemoryImage m(twoSymbolProgram());
    m.fillWords("b", {-5, 7});
    EXPECT_EQ(static_cast<int64_t>(m.readWord(m.symbolBase("b"))), -5);
}

// ---------------------------------------------------------------- port: strides

struct StrideCase
{
    int64_t stride;
    double expected_rate;
};

class StrideRateTest : public ::testing::TestWithParam<StrideCase>
{
};

TEST_P(StrideRateTest, MatchesBankInterleaveFormula)
{
    machine::MemoryConfig cfg; // 32 banks, busy 8
    MemoryPort port(cfg);
    EXPECT_DOUBLE_EQ(port.strideRate(GetParam().stride),
                     GetParam().expected_rate);
}

INSTANTIATE_TEST_SUITE_P(
    Convex32Banks, StrideRateTest,
    ::testing::Values(StrideCase{1, 1.0},   // 32 distinct banks
                      StrideCase{-1, 1.0},  // backward gather
                      StrideCase{2, 1.0},   // 16 banks >= busy
                      StrideCase{5, 1.0},   // coprime: 32 banks
                      StrideCase{25, 1.0},  // coprime: 32 banks
                      StrideCase{8, 2.0},   // 4 banks -> 8/4
                      StrideCase{16, 4.0},  // 2 banks -> 8/2
                      StrideCase{32, 8.0},  // same bank every access
                      StrideCase{64, 8.0},  // stride mod banks == 0
                      StrideCase{-32, 8.0}));

TEST(MemoryPort, StreamBackToBackUsesPortSerially)
{
    machine::MemoryConfig cfg;
    cfg.refreshPeriodCycles = 1 << 20; // effectively no refresh
    MemoryPort port(cfg);
    StreamTiming a = port.serviceStream(0.0, 128, 1);
    StreamTiming b = port.serviceStream(0.0, 128, 1);
    EXPECT_DOUBLE_EQ(a.enter, 0.0);
    EXPECT_DOUBLE_EQ(a.streamEnd, 128.0);
    EXPECT_DOUBLE_EQ(b.enter, 128.0);
}

TEST(MemoryPort, RateFloorSlowsStream)
{
    machine::MemoryConfig cfg;
    cfg.refreshEnabled = false;
    MemoryPort port(cfg);
    StreamTiming t = port.serviceStream(0.0, 100, 1, 2.0);
    EXPECT_DOUBLE_EQ(t.rate, 2.0);
    EXPECT_DOUBLE_EQ(t.streamEnd, 200.0);
}

TEST(MemoryPort, RefreshChargedDuringBusyStream)
{
    machine::MemoryConfig cfg; // refresh every 400 for 8
    MemoryPort port(cfg);
    // One 500-element unit stream crosses the 400-cycle boundary once.
    StreamTiming t = port.serviceStream(0.0, 500, 1);
    EXPECT_DOUBLE_EQ(t.refreshStall, 8.0);
    EXPECT_DOUBLE_EQ(t.streamEnd, 508.0);
}

TEST(MemoryPort, RefreshMaskedWhilePortIdle)
{
    machine::MemoryConfig cfg;
    MemoryPort port(cfg);
    // Start between refreshes, long after the port went idle: the
    // earlier refreshes were fully masked.
    StreamTiming t = port.serviceStream(2010.0, 100, 1);
    EXPECT_DOUBLE_EQ(t.refreshStall, 0.0);
    EXPECT_DOUBLE_EQ(t.enter, 2010.0);
}

TEST(MemoryPort, RefreshInProgressDelaysIdleStart)
{
    machine::MemoryConfig cfg;
    MemoryPort port(cfg);
    // A stream arriving within the refresh window waits it out even
    // though the port was idle before.
    StreamTiming t = port.serviceStream(2003.0, 100, 1);
    EXPECT_GT(t.enter, 2003.0);
    EXPECT_GT(t.refreshStall, 0.0);
}

TEST(MemoryPort, RefreshInterruptingPendingTrafficCharged)
{
    machine::MemoryConfig cfg;
    MemoryPort port(cfg);
    // First stream ends just before a refresh boundary; the second
    // starts just after it and must absorb the full refresh.
    StreamTiming a = port.serviceStream(0.0, 399, 1);
    EXPECT_DOUBLE_EQ(a.streamEnd, 399.0);
    StreamTiming b = port.serviceStream(401.0, 100, 1);
    EXPECT_GE(b.enter, 408.0);
    EXPECT_GT(b.refreshStall, 0.0);
}

TEST(MemoryPort, LongStreamChargesMultipleRefreshes)
{
    machine::MemoryConfig cfg;
    MemoryPort port(cfg);
    StreamTiming t = port.serviceStream(0.0, 1200, 1);
    // Boundaries at 400, 800, 1200(+stall drift) -> at least 3 charges.
    EXPECT_GE(t.refreshStall, 24.0);
    EXPECT_DOUBLE_EQ(port.refreshStallTotal(), t.refreshStall);
}

TEST(MemoryPort, ScalarAccessOccupiesPort)
{
    machine::MemoryConfig cfg;
    cfg.refreshEnabled = false;
    MemoryPort port(cfg);
    ScalarAccessTiming s = port.serviceScalar(10.0);
    EXPECT_DOUBLE_EQ(s.start, 10.0);
    EXPECT_GT(s.done, s.start);
    StreamTiming t = port.serviceStream(0.0, 8, 1);
    EXPECT_GE(t.enter, s.done);
}

TEST(MemoryPort, ContentionMultipliesRate)
{
    machine::MemoryConfig cfg;
    cfg.refreshEnabled = false;
    MemoryPort port(cfg, 1.5);
    StreamTiming t = port.serviceStream(0.0, 100, 1);
    EXPECT_DOUBLE_EQ(t.rate, 1.5);
}

TEST(MemoryPort, ContentionBelowOneIsRejected)
{
    machine::MemoryConfig cfg;
    EXPECT_THROW(MemoryPort(cfg, 0.5), PanicError);
}

// ---------------------------------------------------------------- contention

TEST(Contention, IndependentMatchesPaperBand)
{
    // Paper: one access per 56-64 ns instead of 40 ns at 4 CPUs.
    double f = contentionFactor(4, WorkloadMix::Independent);
    EXPECT_GE(f, 56.0 / 40.0 - 0.01);
    EXPECT_LE(f, 64.0 / 40.0 + 0.01);
}

TEST(Contention, LockStepMuchLighter)
{
    double ind = contentionFactor(4, WorkloadMix::Independent);
    double ls = contentionFactor(4, WorkloadMix::LockStep);
    EXPECT_LT(ls, ind);
    EXPECT_GT(ls, 1.0);
}

TEST(Contention, SingleCpuIsUnity)
{
    EXPECT_DOUBLE_EQ(contentionFactor(1, WorkloadMix::Independent), 1.0);
    EXPECT_DOUBLE_EQ(contentionFactor(1, WorkloadMix::LockStep), 1.0);
}

TEST(Contention, MonotoneInActiveCpus)
{
    for (int mix = 0; mix < 2; ++mix) {
        auto m = static_cast<WorkloadMix>(mix);
        for (int c = 1; c < 4; ++c)
            EXPECT_LE(contentionFactor(c, m), contentionFactor(c + 1, m));
    }
}

TEST(Contention, QueueingEstimateBehaves)
{
    machine::MemoryConfig cfg;
    EXPECT_DOUBLE_EQ(contentionFactorQueueing(1, cfg), 1.0);
    double f4 = contentionFactorQueueing(4, cfg);
    EXPECT_GT(f4, 1.0);
    machine::MemoryConfig few = cfg;
    few.banks = 8;
    EXPECT_GT(contentionFactorQueueing(4, few), f4);
}

TEST(Contention, RejectsZeroCpus)
{
    EXPECT_THROW(contentionFactor(0, WorkloadMix::Independent),
                 PanicError);
}

} // namespace
} // namespace macs::sim
