file(REMOVE_RECURSE
  "CMakeFiles/macs_cli.dir/macs_cli.cc.o"
  "CMakeFiles/macs_cli.dir/macs_cli.cc.o.d"
  "macs"
  "macs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
