/**
 * @file
 * Portable readiness-notification layer of the event-driven server
 * core (docs/SERVER.md): EventPoller wraps `epoll(7)` in
 * edge-triggered mode on Linux and falls back to `poll(2)` elsewhere
 * (or on request, so the fallback is testable on Linux too), and
 * Wakeup is the cross-thread doorbell (eventfd on Linux, self-pipe
 * otherwise) that lets compute workers nudge an event-loop shard out
 * of its wait.
 *
 * Semantics are normalized to the edge-triggered contract: after a
 * readable/writable event the owner must drain the fd until
 * EAGAIN. The poll(2) backend is level-triggered underneath, which
 * only produces extra wakeups — never missed ones — so shard logic is
 * identical on both backends.
 */

#ifndef MACS_SERVER_POLLER_H
#define MACS_SERVER_POLLER_H

#include <cstddef>
#include <map>
#include <vector>

namespace macs::server {

/** One readiness report from EventPoller::wait(). */
struct PollEvent
{
    void *data = nullptr; ///< as registered with add()/mod()
    bool readable = false;
    bool writable = false;
    /** Error/hangup; the fd should be drained and closed. */
    bool error = false;
};

class EventPoller
{
  public:
    enum class Backend
    {
        /** epoll on Linux, poll(2) elsewhere. */
        Default,
        /** Force the poll(2) fallback (portability testing). */
        Poll,
    };

    explicit EventPoller(Backend backend = Backend::Default);
    ~EventPoller();

    EventPoller(const EventPoller &) = delete;
    EventPoller &operator=(const EventPoller &) = delete;

    /**
     * Register @p fd for read readiness (plus write readiness when
     * @p want_write). @p data is echoed back in PollEvent.
     * @retval false on registration failure (fd limit, bad fd).
     */
    bool add(int fd, bool want_write, void *data);

    /** Change the write-interest / data of a registered fd. */
    bool mod(int fd, bool want_write, void *data);

    /** Deregister @p fd (ignores fds that were never added). */
    void del(int fd);

    /**
     * Wait up to @p timeout_ms (-1 = forever) and append ready fds to
     * @p out (cleared first).
     * @return number of events, 0 on timeout, -1 on error (EINTR is
     *         reported as 0).
     */
    int wait(std::vector<PollEvent> &out, int timeout_ms);

    /** Registered fd count (excludes nothing; wakeup fds included). */
    size_t size() const { return interest_.size(); }

    /** "epoll" or "poll" — exported on the per-shard metric labels. */
    const char *backendName() const;

  private:
    struct Interest
    {
        bool wantWrite = false;
        void *data = nullptr;
    };

    Backend backend_;
    int epollFd_ = -1; ///< -1 when the poll(2) backend is active
    /** Registered fds; the poll(2) backend rebuilds its set from it. */
    std::map<int, Interest> interest_;
};

/**
 * Cross-thread doorbell: notify() is async-signal-safe-ish (one
 * syscall, never blocks) and may be called from any thread; the
 * owning shard registers fd() with its poller and calls drain() when
 * it fires.
 */
class Wakeup
{
  public:
    Wakeup();
    ~Wakeup();

    Wakeup(const Wakeup &) = delete;
    Wakeup &operator=(const Wakeup &) = delete;

    /** The readable end to register with an EventPoller. */
    int fd() const { return readFd_; }

    /** Make fd() readable; coalesces with pending notifications. */
    void notify();

    /** Consume pending notifications (call on readability). */
    void drain();

  private:
    int readFd_ = -1;
    int writeFd_ = -1; ///< == readFd_ for eventfd
};

/** Put @p fd into non-blocking mode. @retval false on fcntl failure. */
bool setNonBlocking(int fd);

} // namespace macs::server

#endif // MACS_SERVER_POLLER_H
