file(REMOVE_RECURSE
  "libmacs_isa.a"
)
