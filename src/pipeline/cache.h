/**
 * @file
 * Thread-safe memoization cache for kernel analyses.
 *
 * The cache maps CacheKey -> shared_future<analysis>. The first
 * requester of a key becomes its *owner*: it computes the analysis and
 * fulfills the future; concurrent requesters of the same key receive
 * the same future and block until the owner finishes. This gives
 * exactly one computation per unique key per cache lifetime with no
 * lock held during the (expensive) computation, and it is deadlock-free
 * because an owner always completes its own future synchronously inside
 * the task that created the entry.
 *
 * Failures propagate: if the owner's computation throws, the exception
 * is stored in the future and rethrown to every waiter; the entry stays
 * poisoned (retrying a deterministic computation would fail again).
 *
 * CAPACITY (docs/SERVER.md): by default the cache is unbounded — the
 * right behavior for one-shot `macs batch`, whose working set is the
 * job set itself. A long-running `macs serve` process instead calls
 * setCapacity(n) to cap the number of resident entries; the cache then
 * evicts in strict least-recently-used order (a claim() hit refreshes
 * recency) and counts every eviction, publishing
 * `macs_cache_evictions_total` when a registry is attached. Evicting a
 * still-pending entry is safe: existing waiters keep their
 * shared_future copies and the owner still fulfills its promise; only
 * the memoization is lost (a later claim recomputes).
 */

#ifndef MACS_PIPELINE_CACHE_H
#define MACS_PIPELINE_CACHE_H

#include <atomic>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "macs/hierarchy.h"
#include "obs/metrics.h"
#include "pipeline/job.h"

namespace macs::pipeline {

class AnalysisCache
{
  public:
    using Value = std::shared_ptr<const model::KernelAnalysis>;

    /** What claim() hands back: a future and whether we must compute. */
    struct Claim
    {
        std::shared_future<Value> future;
        /** Promise to fulfill; non-null iff this caller is the owner. */
        std::shared_ptr<std::promise<Value>> promise;

        bool owner() const { return promise != nullptr; }
    };

    /**
     * Look up @p key, inserting a pending entry when absent. Exactly
     * one caller per key ever receives an owner claim; it MUST either
     * set_value or set_exception on the promise. A hit refreshes the
     * key's LRU recency.
     */
    Claim claim(const CacheKey &key);

    /**
     * Pre-populate @p key with an already computed @p value (checkpoint
     * resume): later claims become hits. Does not bump the hit/miss
     * counters itself. @retval false when the key was already present
     * (the existing entry wins).
     */
    bool seed(const CacheKey &key, Value value);

    /**
     * Bound the cache to @p capacity resident entries (0 = unbounded,
     * the default). Shrinking below the current size evicts the LRU
     * tail immediately.
     */
    void setCapacity(size_t capacity);

    size_t capacity() const;

    /**
     * Publish evictions as the `macs_cache_evictions_total` counter of
     * @p registry (nullptr detaches). The counter series is created
     * lazily on the first eviction.
     */
    void attachMetrics(obs::Registry *registry);

    /** Lifetime hit/miss/eviction counters (hits = non-owner claims). @{ */
    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    uint64_t evictions() const { return evictions_.load(); }
    /** @} */

    /** Number of currently resident keys. */
    size_t size() const;

    /** Drop all entries and reset the counters. */
    void clear();

  private:
    struct Entry
    {
        std::shared_future<Value> future;
        std::list<CacheKey>::iterator lru;
    };

    /** Move @p entry to the most-recent position. mu_ held. */
    void touch(Entry &entry);
    /** Evict LRU entries until size() <= capacity_. mu_ held. */
    void enforceCapacity();

    mutable std::mutex mu_;
    std::map<CacheKey, Entry> entries_;
    std::list<CacheKey> lru_; ///< front = most recently used
    size_t capacity_ = 0;     ///< 0 = unbounded
    obs::Registry *metrics_ = nullptr;
    obs::Counter *evictionCounter_ = nullptr; // lazily bound, mu_ held
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> evictions_{0};
};

} // namespace macs::pipeline

#endif // MACS_PIPELINE_CACHE_H
