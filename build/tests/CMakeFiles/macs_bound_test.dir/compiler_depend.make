# Empty compiler generated dependencies file for macs_bound_test.
# This may be replaced when dependencies are built.
