#include "pipeline/mp_report.h"

#include <sstream>

#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "sim/multi_cpu.h"
#include "sim/mp/coupled.h"
#include "sim/simulator.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/table.h"

namespace macs::pipeline {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** Fixed six-decimal rendering keeps the document deterministic. */
std::string
jnum(double v)
{
    return format("%.6f", v);
}

double
soloCycles(const lfk::Kernel &k, const machine::MachineConfig &cfg)
{
    sim::SimOptions opt;
    opt.tier = sim::SimTier::Reference;
    sim::Simulator s(cfg, k.program, opt);
    if (k.setup)
        k.setup(s);
    return s.run().cycles;
}

void
finishMeans(MpAnalysis &a)
{
    for (const MpCpuRow &r : a.cpuRows) {
        a.meanCycles += r.cycles;
        a.meanPerAccessNs += r.perAccessNs;
        a.collisions += r.collisions;
    }
    double n = static_cast<double>(a.cpuRows.size());
    a.meanCycles /= n;
    a.meanPerAccessNs /= n;
    a.meanDegradation = a.meanCycles / a.soloCycles - 1.0;
}

} // namespace

const char *
mpEngineName(MpEngine engine)
{
    switch (engine) {
      case MpEngine::Coupled:
        return "coupled";
      case MpEngine::Analytic:
        return "analytic";
    }
    return "coupled";
}

bool
parseMpEngine(const std::string &text, MpEngine &out)
{
    if (text == "coupled") {
        out = MpEngine::Coupled;
        return true;
    }
    if (text == "analytic") {
        out = MpEngine::Analytic;
        return true;
    }
    return false;
}

MpAnalysis
runMpAnalysis(const MpRequest &request)
{
    const machine::MachineConfig &cfg = request.config;
    int cpus = request.cpus == 0 ? cfg.cpus : request.cpus;
    if (cpus < 1 || cpus > cfg.cpus)
        fatal("cpus must be in 1..", cfg.cpus, " for machine '",
              request.machineName, "'; got ", cpus);
    if (request.mix == lfk::MpMix::Strip &&
        request.engine == MpEngine::Analytic)
        fatal("the analytic engine cannot strip-mine (the contention "
              "fixed point models whole competing programs); use "
              "--engine coupled");

    MpAnalysis a;
    a.kernelId = request.kernelId;
    a.mix = request.mix;
    a.cpus = cpus;
    a.engine = request.engine;
    a.machineName = request.machineName;
    a.clockNs = cfg.clockNs();

    lfk::MpWorkload w =
        lfk::buildMpWorkload(request.kernelId, request.mix, cpus);
    a.kernel = w.kernels.front().name;
    if (request.mix == lfk::MpMix::Strip)
        a.kernel = lfk::makeKernel(request.kernelId).name;
    // The uncontended baseline is always the whole kernel on one CPU.
    lfk::Kernel whole = lfk::makeKernel(request.kernelId);
    a.soloCycles = soloCycles(whole, cfg);

    if (request.engine == MpEngine::Coupled) {
        sim::mp::CoupledResult res = sim::mp::runCoupled(w.jobs, cfg, {});
        a.makespanCycles = res.makespanCycles;
        for (const sim::mp::CoupledCpuResult &c : res.cpus) {
            MpCpuRow r;
            r.label = c.label;
            r.cycles = c.stats.cycles;
            r.degradation = c.stats.cycles / a.soloCycles - 1.0;
            r.perAccessNs = c.shared.perAccessCycles() * cfg.clockNs();
            r.collisions = c.shared.collisions;
            r.foreignDelayCycles = c.shared.foreignDelayCycles;
            a.cpuRows.push_back(std::move(r));
        }
    } else {
        std::vector<sim::CpuJob> jobs;
        for (const sim::mp::CoupledJob &j : w.jobs)
            jobs.push_back({j.program, j.setup});
        sim::MultiCpuOptions opt;
        sim::WorkloadMix wm;
        bool mapped = lfk::toWorkloadMix(request.mix, wm);
        MACS_ASSERT(mapped, "strip rejected above");
        opt.mix = wm;
        sim::MultiCpuResult res = sim::runMultiCpu(jobs, cfg, opt);
        for (size_t i = 0; i < res.stats.size(); ++i) {
            MpCpuRow r;
            r.label = w.jobs[i].label;
            r.cycles = res.stats[i].cycles;
            r.degradation = r.cycles / a.soloCycles - 1.0;
            // The converged factor is the memory-stream slowdown
            // against the one-element-per-cycle peak.
            r.perAccessNs = res.factor[i] * cfg.clockNs();
            a.cpuRows.push_back(std::move(r));
            a.makespanCycles = std::max(a.makespanCycles, r.cycles);
        }
    }
    finishMeans(a);

    // The MACS C level: bound with the calibrated factor, measured
    // time fed back in CPL so the report attributes the gap.
    sim::WorkloadMix wm;
    if (lfk::toWorkloadMix(request.mix, wm)) {
        model::KernelAnalysis analysis =
            model::analyzeKernel(lfk::toKernelCase(whole), cfg);
        double points = static_cast<double>(whole.points);
        a.level = model::contentionLevel(analysis, cpus, wm,
                                         a.meanCycles / points);
        a.hasLevel = true;
    }
    return a;
}

std::string
mpCacheKey(const MpRequest &request)
{
    int cpus = request.cpus == 0 ? request.config.cpus : request.cpus;
    return format("mp|%s|lfk%d|%s|%d|%016llx",
                  mpEngineName(request.engine), request.kernelId,
                  lfk::mpMixName(request.mix), cpus,
                  static_cast<unsigned long long>(
                      request.config.contentHash()));
}

std::string
renderMpJson(const MpAnalysis &a)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"macs-mp-v1\",\n";
    os << "  \"kernel\": \"" << jsonEscape(a.kernel) << "\",\n";
    os << "  \"machine\": \"" << jsonEscape(a.machineName) << "\",\n";
    os << "  \"mix\": \"" << lfk::mpMixName(a.mix) << "\",\n";
    os << "  \"engine\": \"" << mpEngineName(a.engine) << "\",\n";
    os << "  \"cpus\": " << a.cpus << ",\n";
    os << "  \"clockNs\": " << jnum(a.clockNs) << ",\n";
    os << "  \"soloCycles\": " << jnum(a.soloCycles) << ",\n";
    os << "  \"makespanCycles\": " << jnum(a.makespanCycles) << ",\n";
    os << "  \"meanCycles\": " << jnum(a.meanCycles) << ",\n";
    os << "  \"meanDegradation\": " << jnum(a.meanDegradation)
       << ",\n";
    os << "  \"meanPerAccessNs\": " << jnum(a.meanPerAccessNs)
       << ",\n";
    os << "  \"collisions\": " << a.collisions << ",\n";
    os << "  \"cpuRows\": [\n";
    for (size_t i = 0; i < a.cpuRows.size(); ++i) {
        const MpCpuRow &r = a.cpuRows[i];
        os << "    {\"label\": \"" << jsonEscape(r.label)
           << "\", \"cycles\": " << jnum(r.cycles)
           << ", \"degradation\": " << jnum(r.degradation)
           << ", \"perAccessNs\": " << jnum(r.perAccessNs)
           << ", \"collisions\": " << r.collisions
           << ", \"foreignDelayCycles\": "
           << jnum(r.foreignDelayCycles) << "}"
           << (i + 1 < a.cpuRows.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (a.hasLevel) {
        const model::ContentionLevel &c = a.level;
        os << ",\n  \"contention\": {"
           << "\"factor\": " << jnum(c.factor)
           << ", \"tMACS\": " << jnum(c.tMACS)
           << ", \"tMACSm\": " << jnum(c.tMACSm)
           << ", \"tMACSC\": " << jnum(c.macsC)
           << ", \"tC\": " << jnum(c.tC)
           << ", \"contentionGap\": " << jnum(c.contentionGap())
           << ", \"unmodeledGap\": " << jnum(c.unmodeledGap())
           << ", \"coverage\": " << jnum(c.coverage()) << "}";
    }
    os << "\n}\n";
    return os.str();
}

std::string
renderMpText(const MpAnalysis &a)
{
    std::ostringstream os;
    os << format("%s on %s: %d CPU%s, %s mix, %s engine\n",
                 a.kernel.c_str(), a.machineName.c_str(), a.cpus,
                 a.cpus == 1 ? "" : "s", lfk::mpMixName(a.mix),
                 mpEngineName(a.engine));
    os << format("solo %.0f cycles; makespan %.0f cycles; mean "
                 "degradation %+.1f%%; %.1f ns/access (peak %.0f)\n\n",
                 a.soloCycles, a.makespanCycles,
                 100.0 * a.meanDegradation, a.meanPerAccessNs,
                 a.clockNs);
    Table t({"cpu", "cycles", "degradation", "ns/access", "collisions",
             "foreign delay"});
    for (const MpCpuRow &r : a.cpuRows)
        t.addRow({r.label, Table::num(r.cycles, 0),
                  format("%+.1f%%", 100.0 * r.degradation),
                  Table::num(r.perAccessNs, 1),
                  Table::num(static_cast<long>(r.collisions)),
                  Table::num(r.foreignDelayCycles, 0)});
    os << t.render();
    if (a.hasLevel)
        os << "\n" << model::renderContentionLevel(a.level);
    return os.str();
}

} // namespace macs::pipeline
