file(REMOVE_RECURSE
  "../bench/table4_bounds_vs_measured"
  "../bench/table4_bounds_vs_measured.pdb"
  "CMakeFiles/table4_bounds_vs_measured.dir/table4_bounds_vs_measured.cc.o"
  "CMakeFiles/table4_bounds_vs_measured.dir/table4_bounds_vs_measured.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bounds_vs_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
