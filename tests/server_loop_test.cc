/**
 * @file
 * Deterministic tests of the event-driven per-connection state
 * machine (src/server/connection.h) — no sockets, no threads, no
 * timing. A scripted ByteIo replays exactly the byte arrivals and
 * transport verdicts (EAGAIN, short writes, EOF, errors) the kernel
 * would produce, so every READ_HEADERS → READ_BODY → COMPUTE → WRITE
 * → keep-alive transition is asserted byte-for-byte and the suite is
 * meaningful under TSan/ASan/UBSan.
 *
 * docs/TESTING.md describes the harness and how to add cases.
 */

#include <deque>
#include <string>

#include <gtest/gtest.h>

#include "server/connection.h"
#include "server/http.h"

namespace macs::server {
namespace {

/**
 * Scripted transport. Reads are served from a queue of operations
 * (byte chunks, EAGAIN verdicts, a sticky EOF, a hard error); writes
 * are bounded by a queue of per-call capacities (-1 = EAGAIN,
 * -2 = error, otherwise a short-write ceiling) and captured into
 * `written`. Call counts expose how many "syscalls" the machine made.
 */
class ScriptIo final : public ByteIo
{
  public:
    void feed(std::string bytes)
    {
        reads_.push_back({Op::Bytes, std::move(bytes)});
    }
    void again(int n = 1)
    {
        for (int i = 0; i < n; ++i)
            reads_.push_back({Op::Again, ""});
    }
    void eofNext() { reads_.push_back({Op::Eof, ""}); }
    void errNext() { reads_.push_back({Op::Err, ""}); }

    /** Next write() accepts at most @p cap bytes (-1/-2 verdicts). */
    void writeCap(int cap) { writeCaps_.push_back(cap); }

    int read(char *buf, size_t len) override
    {
        ++readCalls;
        if (reads_.empty())
            return kWouldBlock;
        Op &op = reads_.front();
        switch (op.kind) {
        case Op::Again:
            reads_.pop_front();
            return kWouldBlock;
        case Op::Eof:
            return 0; // sticky, like a half-closed socket
        case Op::Err:
            return kError;
        case Op::Bytes: {
            size_t n = std::min(len, op.bytes.size());
            std::copy_n(op.bytes.data(), n, buf);
            op.bytes.erase(0, n);
            if (op.bytes.empty())
                reads_.pop_front();
            return static_cast<int>(n);
        }
        }
        return kError;
    }

    int write(const char *buf, size_t len) override
    {
        ++writeCalls;
        int cap = static_cast<int>(len);
        if (!writeCaps_.empty()) {
            cap = writeCaps_.front();
            writeCaps_.pop_front();
        }
        if (cap == -1)
            return kWouldBlock;
        if (cap == -2)
            return kError;
        size_t n = std::min(len, static_cast<size_t>(cap));
        written.append(buf, n);
        return static_cast<int>(n);
    }

    std::string written;
    int readCalls = 0;
    int writeCalls = 0;

  private:
    struct Op
    {
        enum Kind
        {
            Bytes,
            Again,
            Eof,
            Err
        } kind;
        std::string bytes;
    };
    std::deque<Op> reads_;
    std::deque<int> writeCaps_;
};

HttpResponse
okResponse(const std::string &body)
{
    HttpResponse r;
    r.body = body;
    return r;
}

TEST(ConnStateMachine, PartialReadsMidHeaderNeedMoreUntilComplete)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    EXPECT_EQ(conn.state(), Connection::State::ReadHeaders);
    EXPECT_STREQ(connStateName(conn.state()), "READ_HEADERS");

    // The request line arrives one fragment at a time; the machine
    // stays in READ_HEADERS and reports NeedMore at each drain.
    for (const char *frag :
         {"GET /hea", "lthz HT", "TP/1.1\r", "\nHost: x\r\n"}) {
        io.feed(frag);
        EXPECT_EQ(conn.onReadable(io), Connection::ReadEvent::NeedMore);
        EXPECT_EQ(conn.state(), Connection::State::ReadHeaders);
        EXPECT_TRUE(conn.midRequest());
    }

    io.feed("\r\n");
    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    EXPECT_EQ(conn.state(), Connection::State::Compute);
    HttpRequest req = conn.takeRequest();
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/healthz");
}

TEST(ConnStateMachine, TornChunkBoundariesReassembleBody)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;

    io.feed("POST /v1/analyze HTTP/1.1\r\n"
            "Transfer-Encoding: chunked\r\n\r\n");
    EXPECT_EQ(conn.onReadable(io), Connection::ReadEvent::NeedMore);
    // Header block consumed, chunked body pending: READ_BODY.
    EXPECT_EQ(conn.state(), Connection::State::ReadBody);
    EXPECT_STREQ(connStateName(conn.state()), "READ_BODY");

    // Torn everywhere a chunk can tear: inside the size line, inside
    // the data, inside the trailing CRLF, inside the last-chunk.
    for (const char *frag : {"5\r", "\nhel", "lo\r", "\n", "0\r\n"}) {
        io.feed(frag);
        EXPECT_EQ(conn.onReadable(io), Connection::ReadEvent::NeedMore)
            << frag;
        EXPECT_EQ(conn.state(), Connection::State::ReadBody);
    }
    io.feed("\r\n");
    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    EXPECT_EQ(conn.takeRequest().body, "hello");
}

TEST(ConnStateMachine, PipelinedRequestsInOneReadNeedNoNewBytes)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");

    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    EXPECT_EQ(conn.takeRequest().path, "/a");

    conn.queueResponse(okResponse("{}\n"), /*keep_alive=*/true);
    EXPECT_EQ(conn.state(), Connection::State::Write);
    ASSERT_EQ(conn.onWritable(io), Connection::WriteEvent::KeepAlive);

    // The second request was already buffered in the parser: the
    // keep-alive re-drain surfaces it WITHOUT touching the transport.
    int reads_before = io.readCalls;
    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    EXPECT_EQ(io.readCalls, reads_before);
    EXPECT_EQ(conn.takeRequest().path, "/b");
}

TEST(ConnStateMachine, EagainStormMakesProgressOneByteAtATime)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    const std::string request = "GET / HTTP/1.1\r\n\r\n";
    for (char c : request) {
        io.feed(std::string(1, c));
        io.again(3); // storm: 3 spurious EAGAINs per byte
    }

    Connection::ReadEvent ev = Connection::ReadEvent::NeedMore;
    int drains = 0;
    while (ev == Connection::ReadEvent::NeedMore && drains < 1000) {
        ev = conn.onReadable(io);
        ++drains;
    }
    ASSERT_EQ(ev, Connection::ReadEvent::RequestReady);
    // Each drain ends at exactly one EAGAIN (no spinning, no loss):
    // a byte group [B, EAGAIN x3] costs 3 drains — one that consumes
    // the byte, two for the residual EAGAINs — and the final byte
    // completes the request before its EAGAINs are even touched.
    int bytes = static_cast<int>(request.size());
    EXPECT_EQ(drains, 3 * (bytes - 1) + 1);
    EXPECT_EQ(conn.takeRequest().path, "/");
}

TEST(ConnStateMachine, WriteBackpressureShortWritesAndResume)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("GET / HTTP/1.1\r\n\r\n");
    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    (void)conn.takeRequest();

    conn.queueResponse(okResponse("hello world\n"), true);
    const std::string expected =
        serializeResponse(okResponse("hello world\n"), true);
    size_t total = conn.pendingOutput();
    ASSERT_EQ(total, expected.size());

    // First flush: 4 bytes land, then the socket blocks.
    io.writeCap(4);
    io.writeCap(-1);
    ASSERT_EQ(conn.onWritable(io), Connection::WriteEvent::Blocked);
    EXPECT_EQ(conn.state(), Connection::State::Write);
    EXPECT_EQ(conn.pendingOutput(), total - 4);

    // Second flush: 7 more, blocked again.
    io.writeCap(7);
    io.writeCap(-1);
    ASSERT_EQ(conn.onWritable(io), Connection::WriteEvent::Blocked);
    EXPECT_EQ(conn.pendingOutput(), total - 11);

    // Final flush drains the rest; keep-alive resets to READ_HEADERS.
    ASSERT_EQ(conn.onWritable(io), Connection::WriteEvent::KeepAlive);
    EXPECT_EQ(conn.pendingOutput(), 0u);
    EXPECT_EQ(conn.state(), Connection::State::ReadHeaders);
    EXPECT_EQ(io.written, expected);
}

TEST(ConnStateMachine, ConnectionCloseResponseEndsInClosed)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("GET / HTTP/1.0\r\n\r\n");
    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    (void)conn.takeRequest();

    conn.queueResponse(okResponse("bye\n"), /*keep_alive=*/false);
    ASSERT_EQ(conn.onWritable(io), Connection::WriteEvent::Closing);
    EXPECT_EQ(conn.state(), Connection::State::Closed);
    EXPECT_STREQ(connStateName(conn.state()), "CLOSED");
    EXPECT_EQ(io.written,
              serializeResponse(okResponse("bye\n"), false));
}

TEST(ConnStateMachine, ReadsSuspendedWhileComputing)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("GET /a HTTP/1.1\r\n\r\n");
    ASSERT_EQ(conn.onReadable(io),
              Connection::ReadEvent::RequestReady);
    EXPECT_EQ(conn.state(), Connection::State::Compute);
    EXPECT_STREQ(connStateName(conn.state()), "COMPUTE");

    // One request in flight per connection: readiness events during
    // COMPUTE must not consume transport bytes.
    io.feed("GET /b HTTP/1.1\r\n\r\n");
    int reads_before = io.readCalls;
    EXPECT_EQ(conn.onReadable(io), Connection::ReadEvent::NeedMore);
    EXPECT_EQ(io.readCalls, reads_before);
    (void)conn.takeRequest();
}

TEST(ConnStateMachine, EofBetweenRequestsIsPeerClosed)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.eofNext();
    EXPECT_EQ(conn.onReadable(io), Connection::ReadEvent::PeerClosed);
    EXPECT_FALSE(conn.midRequest());
}

TEST(ConnStateMachine, EofMidMessageIsTornRequest)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("POST /v1/analyze HTTP/1.1\r\nContent-Length: 100\r\n");
    io.eofNext();
    EXPECT_EQ(conn.onReadable(io), Connection::ReadEvent::TornRequest);
    EXPECT_TRUE(conn.midRequest());
}

TEST(ConnStateMachine, TransportErrorsSurfaceAsIoError)
{
    Connection read_err((RequestParser::Limits()));
    ScriptIo rio;
    rio.feed("GET / ");
    rio.errNext();
    EXPECT_EQ(read_err.onReadable(rio), Connection::ReadEvent::IoError);

    Connection write_err((RequestParser::Limits()));
    ScriptIo wio;
    wio.feed("GET / HTTP/1.1\r\n\r\n");
    ASSERT_EQ(write_err.onReadable(wio),
              Connection::ReadEvent::RequestReady);
    (void)write_err.takeRequest();
    write_err.queueResponse(okResponse("x"), true);
    wio.writeCap(3);
    wio.writeCap(-2);
    EXPECT_EQ(write_err.onWritable(wio),
              Connection::WriteEvent::IoError);
}

TEST(ConnStateMachine, MalformedRequestIsParseError400)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("BOGUS\r\n\r\n");
    ASSERT_EQ(conn.onReadable(io), Connection::ReadEvent::ParseError);
    EXPECT_EQ(conn.errorStatus(), 400);
    EXPECT_FALSE(conn.errorDetail().empty());
}

TEST(ConnStateMachine, OversizeHeaderIsParseError431)
{
    RequestParser::Limits limits;
    limits.maxHeaderBytes = 64;
    Connection conn(limits);
    ScriptIo io;
    io.feed("GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'a') +
            "\r\n\r\n");
    ASSERT_EQ(conn.onReadable(io), Connection::ReadEvent::ParseError);
    EXPECT_EQ(conn.errorStatus(), 431);
}

TEST(ConnStateMachine, ErrorResponseAfterParseErrorFlushesAndCloses)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    io.feed("BOGUS\r\n\r\n");
    ASSERT_EQ(conn.onReadable(io), Connection::ReadEvent::ParseError);

    // The shard answers parse errors from the read states directly.
    HttpResponse err;
    err.status = conn.errorStatus();
    err.body = "bad\n";
    conn.queueResponse(err, /*keep_alive=*/false);
    EXPECT_EQ(conn.state(), Connection::State::Write);
    ASSERT_EQ(conn.onWritable(io), Connection::WriteEvent::Closing);
    EXPECT_EQ(io.written, serializeResponse(err, false));
}

TEST(ConnStateMachine, ManyKeepAliveRoundsOnOneConnection)
{
    Connection conn((RequestParser::Limits()));
    ScriptIo io;
    for (int round = 0; round < 32; ++round) {
        io.feed("POST /v1/analyze HTTP/1.1\r\nContent-Length: 2\r\n"
                "\r\nhi");
        ASSERT_EQ(conn.onReadable(io),
                  Connection::ReadEvent::RequestReady)
            << "round " << round;
        EXPECT_EQ(conn.takeRequest().body, "hi");
        conn.queueResponse(okResponse("{}\n"), true);
        ASSERT_EQ(conn.onWritable(io),
                  Connection::WriteEvent::KeepAlive);
        EXPECT_EQ(conn.state(), Connection::State::ReadHeaders);
    }
}

} // namespace
} // namespace macs::server
