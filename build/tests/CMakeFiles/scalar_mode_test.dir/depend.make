# Empty dependencies file for scalar_mode_test.
# This may be replaced when dependencies are built.
