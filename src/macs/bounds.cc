#include "macs/bounds.h"

#include <algorithm>

namespace macs::model {

PipeBound
pipeBound(const WorkloadCounts &counts)
{
    PipeBound b;
    b.tF = counts.tF();
    b.tM = counts.tM();
    b.bound = std::max(b.tF, b.tM);
    return b;
}

} // namespace macs::model
