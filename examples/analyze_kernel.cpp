/**
 * @file
 * Full MACS hierarchy analysis of a Livermore kernel: the Figure-1
 * stack of bounds and measurements with the section-4.4-style gap
 * diagnosis. Pass an LFK number (1, 2, 3, 4, 6, 7, 8, 9, 10, 12);
 * defaults to all ten.
 */

#include <cstdio>
#include <cstdlib>

#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "machine/machine_config.h"

int
main(int argc, char **argv)
{
    using namespace macs;

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();

    std::vector<int> ids;
    if (argc > 1) {
        ids.push_back(std::atoi(argv[1]));
    } else {
        ids = lfk::lfkIds();
    }

    for (int id : ids) {
        lfk::Kernel k = lfk::makeKernel(id);
        std::printf("%s — %s\n", k.name.c_str(), k.description.c_str());
        std::printf("source:\n%s\n\n", k.sourceText.c_str());
        model::KernelAnalysis a =
            model::analyzeKernel(lfk::toKernelCase(k), cfg);
        std::printf("%s\n", model::renderReport(a, cfg).c_str());
    }
    return 0;
}
