/**
 * @file
 * Observability-layer tests: registry semantics (label aliasing, kind
 * mismatch, histogram buckets, concurrent increments), exporter golden
 * files, the JSON reader, the Chrome trace round trip (per-pipe busy
 * sums must equal simulator accounting EXACTLY), the sim/model metric
 * recorders, and byte-stability of batch gap metrics across worker
 * counts.
 *
 * Golden files live in tests/golden/; regenerate after an intentional
 * format change with:
 *     UPDATE_GOLDEN=1 ./build/tests/obs_test
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "macs/gap_metrics.h"
#include "macs/hierarchy.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/sim_metrics.h"
#include "obs/trace_export.h"
#include "pipeline/pipeline.h"
#include "sim/simulator.h"
#include "support/logging.h"

#ifndef MACS_GOLDEN_DIR
#error "MACS_GOLDEN_DIR must be defined by the build"
#endif

namespace macs::obs {
namespace {

// ----------------------------------------------------------- helpers

std::string
goldenPath(const std::string &name)
{
    return std::string(MACS_GOLDEN_DIR) + "/" + name;
}

bool
updateRequested()
{
    const char *env = std::getenv("UPDATE_GOLDEN");
    return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
compareAgainstGolden(const std::string &file, const std::string &got)
{
    std::string path = goldenPath(file);
    if (updateRequested()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got;
        SUCCEED() << "updated " << path;
        return;
    }
    std::string want = readFileOrEmpty(path);
    ASSERT_FALSE(want.empty())
        << path << " is missing or empty; run with UPDATE_GOLDEN=1 "
        << "to (re)create it";
    EXPECT_EQ(want, got) << "exporter bytes differ from " << path;
}

/** A small, fully deterministic registry for the exporter goldens. */
void
fillDemoRegistry(Registry &reg)
{
    reg.counter("demo_requests_total", "Requests by result",
                Labels{{"result", "ok"}})
        .inc(41.0);
    reg.counter("demo_requests_total", "Requests by result",
                Labels{{"result", "error"}})
        .inc(1.0);
    reg.gauge("demo_temperature_celsius", "Die temperature").set(21.5);
    static const double edges[] = {0.001, 0.01, 0.1, 1.0};
    Histogram &h = reg.histogram("demo_latency_seconds",
                                 "Request latency", edges);
    for (double v : {0.0005, 0.001, 0.004, 0.25, 3.0, 0.02})
        h.observe(v);
    // A label value exercising JSON/Prometheus escaping.
    reg.gauge("demo_annotated", "Escaping probe",
              Labels{{"note", "a\"b\\c\nd"}})
        .set(1.0);
}

// ------------------------------------------------------------ Labels

TEST(ObsLabels, CanonicalOrderIndependent)
{
    Labels a{{"zone", "z1"}, {"app", "macs"}};
    Labels b{{"app", "macs"}, {"zone", "z1"}};
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.key(), "app=macs,zone=z1");
}

TEST(ObsLabels, SetOverwritesExistingKey)
{
    Labels l{{"k", "v1"}};
    l.set("k", "v2");
    EXPECT_EQ(l.key(), "k=v2");
    EXPECT_EQ(l.pairs().size(), 1u);
}

TEST(ObsLabels, EmptyKeyPanics)
{
    Labels l;
    EXPECT_THROW(l.set("", "v"), PanicError);
}

// ----------------------------------------------------------- metrics

TEST(ObsMetrics, CounterAccumulates)
{
    Counter c;
    c.inc();
    c.inc(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    EXPECT_THROW(c.inc(-1.0), PanicError);
}

TEST(ObsMetrics, GaugeSetAndAdd)
{
    Gauge g;
    g.set(10.0);
    g.add(-2.5);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(ObsMetrics, HistogramLeBucketSemantics)
{
    static const double edges[] = {1.0, 10.0, 100.0};
    Histogram h{edges};
    h.observe(0.5);   // <= 1
    h.observe(1.0);   // == edge: belongs to the le=1 bucket
    h.observe(5.0);   // <= 10
    h.observe(100.0); // == last edge
    h.observe(101.0); // overflow
    std::vector<uint64_t> counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 101.0);
}

TEST(ObsMetrics, HistogramRejectsBadEdges)
{
    static const double unsorted[] = {10.0, 1.0};
    EXPECT_THROW(Histogram{unsorted}, PanicError);
    EXPECT_THROW(Histogram{std::span<const double>{}}, PanicError);
}

// ---------------------------------------------------------- registry

TEST(ObsRegistry, LabelAliasingSharesOneSeries)
{
    Registry reg;
    Counter &a = reg.counter("x_total", "x",
                             Labels{{"a", "1"}, {"b", "2"}});
    Counter &b = reg.counter("x_total", "x",
                             Labels{{"b", "2"}, {"a", "1"}});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.seriesCount(), 1u);
    a.inc(3.0);
    EXPECT_DOUBLE_EQ(b.value(), 3.0);
}

TEST(ObsRegistry, DistinctLabelsFanOut)
{
    Registry reg;
    reg.counter("x_total", "x", Labels{{"k", "a"}}).inc();
    reg.counter("x_total", "x", Labels{{"k", "b"}}).inc(2.0);
    reg.counter("x_total", "x").inc(4.0);
    EXPECT_EQ(reg.seriesCount(), 3u);
}

TEST(ObsRegistry, KindMismatchPanics)
{
    Registry reg;
    reg.counter("mixed", "as counter");
    EXPECT_THROW(reg.gauge("mixed", "as gauge"), PanicError);
    static const double edges[] = {1.0};
    EXPECT_THROW(reg.histogram("mixed", "as histogram", edges),
                 PanicError);
}

TEST(ObsRegistry, HistogramEdgeMismatchPanics)
{
    Registry reg;
    static const double e1[] = {1.0, 2.0};
    static const double e2[] = {1.0, 3.0};
    reg.histogram("h", "h", e1);
    EXPECT_THROW(reg.histogram("h", "h", e2), PanicError);
    // Identical edges are fine (same family, second label set).
    reg.histogram("h", "h", e1, Labels{{"k", "v"}});
    EXPECT_EQ(reg.seriesCount(), 2u);
}

TEST(ObsRegistry, SnapshotSortedByNameThenLabels)
{
    Registry reg;
    reg.counter("zz_total", "z").inc();
    reg.gauge("aa_gauge", "a", Labels{{"k", "b"}}).set(1.0);
    reg.gauge("aa_gauge", "a", Labels{{"k", "a"}}).set(2.0);
    std::vector<Sample> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "aa_gauge");
    EXPECT_EQ(snap[0].labels.key(), "k=a");
    EXPECT_EQ(snap[1].labels.key(), "k=b");
    EXPECT_EQ(snap[2].name, "zz_total");
}

TEST(ObsRegistry, GlobalIsOneInstance)
{
    EXPECT_EQ(&Registry::global(), &Registry::global());
}

// Exercised under TSan by scripts/check.sh: concurrent find-or-create
// plus lock-free increments must neither race nor drop updates.
TEST(ObsRegistry, ConcurrentIncrementsAreExact)
{
    Registry reg;
    static const double edges[] = {100.0, 1000.0};
    constexpr int kThreads = 8;
    constexpr int kPerThread = 4096;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            // Every thread looks the series up itself (concurrent
            // registry access) and then hammers the hot path.
            Counter &c = reg.counter("conc_total", "c");
            Histogram &h = reg.histogram("conc_hist", "h", edges);
            Gauge &g = reg.gauge("conc_gauge", "g");
            for (int i = 0; i < kPerThread; ++i) {
                c.inc();
                h.observe(static_cast<double>((t * kPerThread + i) %
                                              2000));
                g.add(1.0);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    constexpr double kTotal = double(kThreads) * kPerThread;
    EXPECT_DOUBLE_EQ(reg.counter("conc_total", "c").value(), kTotal);
    EXPECT_DOUBLE_EQ(reg.gauge("conc_gauge", "g").value(), kTotal);
    Histogram &h = reg.histogram("conc_hist", "h", edges);
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kTotal));
    uint64_t bucket_sum = 0;
    for (uint64_t b : h.bucketCounts())
        bucket_sum += b;
    EXPECT_EQ(bucket_sum, static_cast<uint64_t>(kTotal));
}

// --------------------------------------------------------- exporters

TEST(ObsExport, JsonMatchesGolden)
{
    Registry reg;
    fillDemoRegistry(reg);
    compareAgainstGolden("obs_metrics.json", renderJson(reg));
}

TEST(ObsExport, PrometheusMatchesGolden)
{
    Registry reg;
    fillDemoRegistry(reg);
    compareAgainstGolden("obs_metrics.prom", renderPrometheus(reg));
}

TEST(ObsExport, BytesIndependentOfRegistrationOrder)
{
    Registry fwd, rev;
    fwd.counter("a_total", "a", Labels{{"k", "1"}}).inc();
    fwd.counter("a_total", "a", Labels{{"k", "2"}}).inc(2.0);
    fwd.gauge("b_gauge", "b").set(3.0);
    rev.gauge("b_gauge", "b").set(3.0);
    rev.counter("a_total", "a", Labels{{"k", "2"}}).inc(2.0);
    rev.counter("a_total", "a", Labels{{"k", "1"}}).inc();
    EXPECT_EQ(renderJson(fwd), renderJson(rev));
    EXPECT_EQ(renderPrometheus(fwd), renderPrometheus(rev));
}

TEST(ObsExport, JsonOutputParsesAndRoundTrips)
{
    Registry reg;
    fillDemoRegistry(reg);
    JsonValue doc = parseJson(renderJson(reg));
    EXPECT_EQ(doc.at("schema").asString(), "macs-metrics-v1");
    const JsonValue &metrics = doc.at("metrics");
    ASSERT_TRUE(metrics.isArray());
    EXPECT_EQ(metrics.size(), reg.snapshot().size());
    // Find the histogram entry and cross-check cumulative buckets.
    bool found = false;
    for (size_t i = 0; i < metrics.size(); ++i) {
        const JsonValue &m = metrics.at(i);
        if (m.at("name").asString() != "demo_latency_seconds")
            continue;
        found = true;
        EXPECT_EQ(m.at("type").asString(), "histogram");
        EXPECT_EQ(m.at("count").asDouble(), 6.0);
        const JsonValue &buckets = m.at("buckets");
        ASSERT_EQ(buckets.size(), 5u); // 4 edges + inf
        // Escaped label value must round-trip through the parser.
    }
    EXPECT_TRUE(found);
    bool escaped = false;
    for (size_t i = 0; i < metrics.size(); ++i) {
        const JsonValue &m = metrics.at(i);
        if (m.at("name").asString() == "demo_annotated") {
            escaped = true;
            EXPECT_EQ(m.at("labels").at("note").asString(),
                      "a\"b\\c\nd");
        }
    }
    EXPECT_TRUE(escaped);
}

// ------------------------------------------------------- JSON reader

TEST(ObsJson, ParsesScalarsArraysObjects)
{
    JsonValue v = parseJson(
        R"({"a": [1, 2.5, -3e2], "s": "x\n\"y\"", "b": true, "n": null})");
    ASSERT_TRUE(v.isObject());
    const JsonValue &a = v.at("a");
    ASSERT_EQ(a.size(), 3u);
    EXPECT_DOUBLE_EQ(a.at(0).asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(a.at(1).asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(a.at(2).asDouble(), -300.0);
    EXPECT_EQ(v.at("s").asString(), "x\n\"y\"");
    EXPECT_TRUE(v.at("b").asBool());
    EXPECT_TRUE(v.at("n").isNull());
    EXPECT_FALSE(v.has("missing"));
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJson, SeventeenDigitDoublesRoundTrip)
{
    // The trace exactness contract rests on %.17g round-tripping.
    double values[] = {1.0 / 3.0, 1e-17, 123456789.123456789,
                       2097152.0000000002};
    for (double want : values) {
        char buf[64];
        snprintf(buf, sizeof buf, "%.17g", want);
        EXPECT_EQ(parseJson(buf).asDouble(), want) << buf;
    }
}

TEST(ObsJson, MalformedInputIsFatalWithOffset)
{
    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("[1, 2"), FatalError);
    EXPECT_THROW(parseJson("{\"a\": 1,}"), FatalError);
    EXPECT_THROW(parseJson("tru"), FatalError);
    EXPECT_THROW(parseJson("\"unterminated"), FatalError);
    EXPECT_THROW(parseJson("1 2"), FatalError); // trailing junk
    try {
        parseJson("[1, @]");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // The message points at the offending byte offset.
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
}

TEST(ObsJson, KindMismatchThrows)
{
    JsonValue v = parseJson("[1]");
    // Kind confusion on our own machine-generated documents is a
    // library bug: panic. A *missing member* is a document-shape
    // problem: fatal.
    EXPECT_THROW(v.asDouble(), PanicError);
    EXPECT_THROW(v.at(5), PanicError);
    EXPECT_THROW(v.at("k"), FatalError);
}

// --------------------------------------------------- trace round trip

struct TracedRun
{
    sim::RunStats stats;
    std::string json;
    double profiledStall = 0.0;
    uint64_t events = 0;
};

TracedRun
traceLfk(int id)
{
    lfk::Kernel k = lfk::makeKernel(id);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::SimOptions opt;
    opt.trace = true;
    opt.profile = true;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    TracedRun out;
    out.stats = s.run();
    out.json = renderChromeTrace(s.timeline(), out.stats);
    out.profiledStall = s.profile().totalStallCycles();
    out.events = s.timeline().events().size();
    return out;
}

TEST(ObsTrace, RoundTripBusyEqualsSimulatorExactly)
{
    TracedRun run = traceLfk(1);
    TraceTotals totals = summarizeChromeTrace(run.json);
    // EXACT equality, not near: args.busy is printed with %.17g and
    // re-summed in event order, reproducing the simulator's own
    // accumulation bit-for-bit (the ISSUE acceptance criterion).
    EXPECT_EQ(totals.pipeBusy[0], run.stats.loadStorePipeBusy);
    EXPECT_EQ(totals.pipeBusy[1], run.stats.addPipeBusy);
    EXPECT_EQ(totals.pipeBusy[2], run.stats.multiplyPipeBusy);
    EXPECT_EQ(totals.cycles, run.stats.cycles);
    EXPECT_EQ(totals.streamEvents, run.stats.vectorInstructions);
    EXPECT_GT(totals.streamEvents, 0u);
}

TEST(ObsTrace, RoundTripExactForAllPaperKernels)
{
    for (int id : lfk::lfkIds()) {
        SCOPED_TRACE("LFK " + std::to_string(id));
        TracedRun run = traceLfk(id);
        TraceTotals totals = summarizeChromeTrace(run.json);
        for (int p = 0; p < 3; ++p)
            EXPECT_EQ(totals.pipeBusy[p], run.stats.pipeBusy(p))
                << "pipe " << p;
    }
}

TEST(ObsTrace, StallSpansMatchProfileTotal)
{
    TracedRun run = traceLfk(1);
    TraceTotals totals = summarizeChromeTrace(run.json);
    // Same per-event stall values; only the summation grouping
    // differs (profile groups by static pc), so allow rounding slack.
    EXPECT_NEAR(totals.stall, run.profiledStall,
                1e-6 * (1.0 + run.profiledStall));
    EXPECT_GT(totals.stall, 0.0);
}

TEST(ObsTrace, DocumentStructure)
{
    TracedRun run = traceLfk(1);
    JsonValue doc = parseJson(run.json);
    EXPECT_EQ(doc.at("otherData").at("schema").asString(),
              "macs-trace-v1");
    const JsonValue &busy = doc.at("otherData").at("pipeBusy");
    ASSERT_EQ(busy.size(), 3u);
    EXPECT_EQ(busy.at(0).asDouble(), run.stats.loadStorePipeBusy);
    // Track metadata names the pipes.
    EXPECT_NE(run.json.find("pipe load/store (stream)"),
              std::string::npos);
    EXPECT_NE(run.json.find("pipe multiply (stalls)"),
              std::string::npos);
    EXPECT_NE(run.json.find("memory port"), std::string::npos);
}

TEST(ObsTrace, OptionsSuppressTracks)
{
    lfk::Kernel k = lfk::makeKernel(1);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::SimOptions opt;
    opt.trace = true;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    sim::RunStats stats = s.run();
    TraceExportOptions topt;
    topt.includeStalls = false;
    topt.includeMemoryPort = false;
    std::string json = renderChromeTrace(s.timeline(), stats, topt);
    TraceTotals totals = summarizeChromeTrace(json);
    EXPECT_EQ(totals.stallEvents, 0u);
    EXPECT_EQ(json.find("memory port"), std::string::npos);
    // Stream exactness is preserved regardless of options.
    EXPECT_EQ(totals.pipeBusy[0], stats.loadStorePipeBusy);
}

// ------------------------------------------------------ sim recorders

TEST(ObsSimMetrics, RecordRunStatsIsAdditive)
{
    Registry reg;
    sim::RunStats st;
    st.cycles = 100.0;
    st.vectorInstructions = 4;
    st.scalarInstructions = 6;
    st.loadStorePipeBusy = 50.0;
    st.addPipeBusy = 30.0;
    st.multiplyPipeBusy = 20.0;
    st.refreshStallCycles = 5.0;
    st.bankConflictCycles = 2.5;
    st.vectorElements = 128;
    st.flops = 64;
    st.memoryElements = 96;
    st.scalarCacheHits = 7;
    st.scalarCacheMisses = 3;

    recordRunStats(reg, st, Labels{{"kernel", "k"}});
    recordRunStats(reg, st, Labels{{"kernel", "k"}});

    Labels k{{"kernel", "k"}};
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_cycles_total", "", k).value(), 200.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_pipe_busy_cycles_total", "",
                    Labels{{"kernel", "k"}, {"pipe", "add"}})
            .value(),
        60.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_instructions_total", "",
                    Labels{{"kernel", "k"}, {"kind", "scalar"}})
            .value(),
        12.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_bank_conflict_cycles_total", "", k)
            .value(),
        5.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_scalar_cache_total", "",
                    Labels{{"kernel", "k"}, {"event", "hit"}})
            .value(),
        14.0);
}

TEST(ObsSimMetrics, RecordStallProfileByCause)
{
    sim::StallProfile profile;
    profile.record(3, "ld.l x,v0", 10.0, sim::StallCause::Tailgate);
    profile.record(3, "ld.l x,v0", 6.0, sim::StallCause::Tailgate);
    profile.record(4, "add.d v0,v1,v2", 8.0, sim::StallCause::Chain);

    Registry reg;
    recordStallProfile(reg, profile);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_stall_cycles_total", "",
                    Labels{{"cause", "tailgate"}})
            .value(),
        16.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_stall_cycles_total", "",
                    Labels{{"cause", "chain"}})
            .value(),
        8.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("macs_sim_stall_cycles_total", "",
                    Labels{{"cause", "interlock"}})
            .value(),
        0.0);
}

// ------------------------------------------------------- gap metrics

TEST(GapMetrics, AttributionSumsToUnmodeledChain)
{
    lfk::Kernel k = lfk::makeKernel(1);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    model::KernelAnalysis a =
        model::analyzeKernel(lfk::toKernelCase(k), cfg);
    model::GapAttribution g = model::gapAttribution(a);
    EXPECT_EQ(g.kernel, a.name);
    EXPECT_DOUBLE_EQ(g.tMA, a.maBound.bound);
    EXPECT_DOUBLE_EQ(g.tSim, a.tP);
    // Gaps telescope: tMA + all gaps == tSim.
    EXPECT_NEAR(g.tMA + g.compilerGap + g.scheduleGap + g.unmodeledGap,
                g.tSim, 1e-9 * g.tSim);
    // The hierarchy is ordered for LFK1.
    EXPECT_LE(g.tMA, g.tMAC);
    EXPECT_LE(g.tMAC, g.tMACS);
    EXPECT_GT(g.chimes, 0u);
    EXPECT_GT(g.macsCoverage(), 0.5);
    EXPECT_LE(g.macsCoverage(), 1.0 + 1e-9);
}

TEST(GapMetrics, RecordedGaugesMatchAttribution)
{
    lfk::Kernel k = lfk::makeKernel(7);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    model::KernelAnalysis a =
        model::analyzeKernel(lfk::toKernelCase(k), cfg);
    model::GapAttribution g = model::gapAttribution(a);

    Registry reg;
    model::recordGapMetrics(reg, a);
    Labels base{{"kernel", a.name}, {"config", "baseline"}};
    Labels ma = base;
    ma.set("level", "ma");
    Labels sim_l = base;
    sim_l.set("level", "sim");
    Labels unmod = base;
    unmod.set("layer", "unmodeled");
    EXPECT_DOUBLE_EQ(reg.gauge("macs_model_level_cpl", "", ma).value(),
                     g.tMA);
    EXPECT_DOUBLE_EQ(
        reg.gauge("macs_model_level_cpl", "", sim_l).value(), g.tSim);
    EXPECT_DOUBLE_EQ(
        reg.gauge("macs_model_gap_cpl", "", unmod).value(),
        g.unmodeledGap);
    EXPECT_DOUBLE_EQ(
        reg.gauge("macs_model_macs_coverage_ratio", "", base).value(),
        g.macsCoverage());
    // 4 levels + 3 gaps + coverage + chime count.
    EXPECT_EQ(reg.seriesCount(), 9u);
}

// -------------------------------------- pipeline + batch determinism

/** Gap-metrics JSON from a batch run — what `macs batch --metrics`
 *  writes. Pure function of the analysis results. */
std::string
batchMetricsJson(size_t workers)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::vector<pipeline::BatchJob> jobs;
    for (int id : {1, 7, 12}) {
        lfk::Kernel k = lfk::makeKernel(id);
        pipeline::BatchJob job;
        job.label = k.name;
        job.kernel = lfk::toKernelCase(k);
        job.config = cfg;
        jobs.push_back(std::move(job));
    }
    pipeline::EngineOptions opt;
    opt.workers = workers;
    Registry scheduling; // keep engine metrics out of the global one
    opt.metrics = &scheduling;
    pipeline::BatchEngine engine(opt);
    pipeline::BatchResult r = engine.run(jobs);
    EXPECT_EQ(r.stats.failures, 0u);

    Registry reg;
    for (const pipeline::JobResult &jr : r.results)
        if (jr.ok())
            model::recordGapMetrics(reg, *jr.analysis, jr.configName,
                                    jr.label);
    return renderJson(reg);
}

TEST(PipelineMetrics, GapMetricsByteIdenticalAcrossWorkerCounts)
{
    std::string serial = batchMetricsJson(1);
    EXPECT_FALSE(serial.empty());
    for (size_t workers : {2u, 4u})
        EXPECT_EQ(serial, batchMetricsJson(workers))
            << "metrics bytes changed at " << workers << " workers";
}

TEST(PipelineMetrics, EnginePublishesSchedulingSeries)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::vector<pipeline::BatchJob> jobs =
        pipeline::paperJobSet(cfg);
    // Duplicate the set so the second half hits the memo cache.
    std::vector<pipeline::BatchJob> twice = jobs;
    twice.insert(twice.end(), jobs.begin(), jobs.end());

    Registry reg;
    pipeline::EngineOptions opt;
    opt.workers = 4;
    opt.metrics = &reg;
    pipeline::BatchEngine engine(opt);
    pipeline::BatchResult r = engine.run(twice);
    ASSERT_EQ(r.stats.failures, 0u);

    EXPECT_DOUBLE_EQ(
        reg.counter("macs_pipeline_jobs_total", "",
                    Labels{{"result", "ok"}})
            .value(),
        static_cast<double>(twice.size()));
    double hits = reg.counter("macs_pipeline_cache_total", "",
                              Labels{{"event", "hit"}})
                      .value();
    double misses = reg.counter("macs_pipeline_cache_total", "",
                                Labels{{"event", "miss"}})
                        .value();
    EXPECT_DOUBLE_EQ(hits, static_cast<double>(jobs.size()));
    EXPECT_DOUBLE_EQ(misses, static_cast<double>(jobs.size()));
    EXPECT_DOUBLE_EQ(reg.gauge("macs_pipeline_workers", "").value(),
                     4.0);

    // Histograms observed one value per job / per computation.
    static const double edges[] = {10.0,    100.0,    1000.0,
                                   10000.0, 100000.0, 1000000.0};
    EXPECT_EQ(
        reg.histogram("macs_pipeline_queue_wait_us", "", edges).count(),
        twice.size());
    EXPECT_EQ(
        reg.histogram("macs_pipeline_compute_us", "", edges).count(),
        jobs.size());
}

} // namespace
} // namespace macs::obs
