/**
 * @file
 * Chrome trace-event JSON export of a simulated run.
 *
 * Converts the simulator's Timeline (sim/trace.h) into the Trace Event
 * Format consumed by chrome://tracing and Perfetto: one "stream" track
 * per vector pipe (load/store, add, multiply) carrying a complete ("X")
 * event per instruction, one "stall" track per pipe carrying the
 * issue-to-entry wait colored by StallCause, and a memory-port track
 * for vector memory streams. Timestamps and durations are simulator
 * cycles rendered as microseconds (1 cycle = 1 us in the viewer).
 *
 * Exactness contract (pinned by tests/obs_test.cc and self-checked by
 * `macs trace --chrome`): every stream event carries the pipe-busy
 * cycles it was charged in args.busy, printed with %.17g so the double
 * round-trips exactly; summing args.busy per pipe track in event order
 * reproduces RunStats::pipeBusy() bit-for-bit.
 *
 * Schema details: docs/OBSERVABILITY.md.
 */

#ifndef MACS_OBS_TRACE_EXPORT_H
#define MACS_OBS_TRACE_EXPORT_H

#include <string>

#include "sim/stats.h"
#include "sim/trace.h"

namespace macs::obs {

/** Options for renderChromeTrace(). */
struct TraceExportOptions
{
    /** Process name shown in the viewer. */
    std::string processName = "macs-sim";
    /** Emit per-pipe stall spans (issue-to-entry waits). */
    bool includeStalls = true;
    /** Emit the memory-port track (vector memory streams). */
    bool includeMemoryPort = true;
};

/**
 * Render @p timeline (recorded with SimOptions::trace) plus the run's
 * aggregate @p stats as one Chrome trace JSON document.
 */
std::string renderChromeTrace(const sim::Timeline &timeline,
                              const sim::RunStats &stats,
                              const TraceExportOptions &options = {});

/** Busy/stall totals recovered from a trace document. */
struct TraceTotals
{
    double pipeBusy[3] = {0.0, 0.0, 0.0}; ///< sum of args.busy per pipe
    double stall = 0.0;       ///< sum of stall span durations
    double cycles = 0.0;      ///< otherData.cycles
    size_t streamEvents = 0;  ///< events on the three stream tracks
    size_t stallEvents = 0;
};

/**
 * Parse a Chrome trace document produced by renderChromeTrace() and
 * re-sum its spans (obs/json.h underneath; fatal() on malformed
 * input). Used by the round-trip test and the `macs trace`
 * self-check: TraceTotals::pipeBusy must equal RunStats::pipeBusy()
 * exactly.
 */
TraceTotals summarizeChromeTrace(const std::string &json_text);

} // namespace macs::obs

#endif // MACS_OBS_TRACE_EXPORT_H
