/**
 * @file
 * Deterministic input data and output checking helpers for the LFK
 * workloads. All values are reproducible across runs (fixed LCG seeds)
 * and sized so that the longest product/recurrence chains stay far from
 * overflow.
 */

#ifndef MACS_LFK_DATA_H
#define MACS_LFK_DATA_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace macs::lfk {

/**
 * Deterministic pseudo-random vector of @p n doubles in
 * [lo, hi), seeded by @p seed.
 */
std::vector<double> testVector(size_t n, uint64_t seed, double lo = 0.1,
                               double hi = 1.1);

/**
 * Compare @p expected against the simulator's memory at @p symbol.
 * @returns empty string when every element matches within relative
 * tolerance @p rel_tol (with a matching absolute floor); otherwise a
 * description of the first mismatch.
 */
std::string compareArray(const sim::Simulator &sim,
                         const std::string &symbol,
                         const std::vector<double> &expected,
                         double rel_tol = 1e-9);

/** Compare a single memory cell (word 0 of @p symbol). */
std::string compareCell(const sim::Simulator &sim,
                        const std::string &symbol, double expected,
                        double rel_tol = 1e-9);

} // namespace macs::lfk

#endif // MACS_LFK_DATA_H
