/**
 * @file
 * The paper's published per-kernel numbers (Tables 2-5), used by the
 * regression tests, the bench harnesses, and the report generator.
 *
 * Caveats (see EXPERIMENTS.md): Table 5's column header is garbled in
 * surviving copies; values here follow section 3.6's definitions
 * (t_A = vector FP deleted, t_X = vector memory deleted). LFK10's
 * Table 5 row is reconstructed from Tables 2-4.
 */

#ifndef MACS_LFK_PAPER_REFERENCE_H
#define MACS_LFK_PAPER_REFERENCE_H

#include <map>

namespace macs::lfk {

/** Paper-published values for one LFK (CPF and CPL). */
struct PaperReference
{
    double maCpf, macCpf, macsCpf, tpCpf; // Table 4
    double tpCpl, macsCpl;                // Table 5
    double tACpl, macsMCpl;               // Table 5 (access side)
    double tXCpl, macsFCpl;               // Table 5 (execute side)
};

/** Published numbers keyed by LFK id (the ten case-study kernels). */
const std::map<int, PaperReference> &paperReference();

} // namespace macs::lfk

#endif // MACS_LFK_PAPER_REFERENCE_H
