file(REMOVE_RECURSE
  "CMakeFiles/macs_compiler.dir/analysis.cc.o"
  "CMakeFiles/macs_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/macs_compiler.dir/ast.cc.o"
  "CMakeFiles/macs_compiler.dir/ast.cc.o.d"
  "CMakeFiles/macs_compiler.dir/codegen.cc.o"
  "CMakeFiles/macs_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/macs_compiler.dir/interpreter.cc.o"
  "CMakeFiles/macs_compiler.dir/interpreter.cc.o.d"
  "CMakeFiles/macs_compiler.dir/loop_parser.cc.o"
  "CMakeFiles/macs_compiler.dir/loop_parser.cc.o.d"
  "CMakeFiles/macs_compiler.dir/scheduler.cc.o"
  "CMakeFiles/macs_compiler.dir/scheduler.cc.o.d"
  "libmacs_compiler.a"
  "libmacs_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macs_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
