#include "server/kernel_source.h"

#include <utility>
#include <vector>

#include "compiler/ast.h"
#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "isa/parser.h"
#include "macs/workload.h"
#include "support/logging.h"

namespace macs::server {

namespace {

/** Collect every array name referenced by @p e into @p out. */
void
collectArrays(const compiler::Expr *e, std::vector<std::string> &out)
{
    if (e == nullptr)
        return;
    if (e->kind == compiler::Expr::Kind::Array)
        out.push_back(e->name);
    collectArrays(e->lhs.get(), out);
    collectArrays(e->rhs.get(), out);
}

} // namespace

bool
kernelFromLoopSource(const std::string &raw, const std::string &name,
                     long trip, model::KernelCase &out,
                     Diagnostics &diags)
{
    // The DSL has no comment syntax; `.loop` sources use `#` to end
    // of line (see tests/corpus/). Blank comments out instead of
    // deleting them so diagnostic line/column positions match the
    // input.
    std::string text = raw;
    bool in_comment = false;
    for (char &c : text) {
        if (c == '\n')
            in_comment = false;
        else if (c == '#')
            in_comment = true;
        if (in_comment)
            c = ' ';
    }

    Diagnostics file_diags;
    file_diags.setSource(text, name);
    compiler::Loop loop = compiler::parseLoop(text, file_diags);
    if (file_diags.hasErrors()) {
        diags.take(std::move(file_diags));
        return false;
    }

    compiler::CompileOptions copt;
    copt.tripCount = trip;
    std::vector<std::string> arrays;
    for (const compiler::Stmt &s : loop.stmts) {
        if (s.arrayDst)
            arrays.push_back(s.dstName);
        collectArrays(s.rhs.get(), arrays);
    }
    for (const std::string &array : arrays) {
        bool seen = false;
        for (const auto &spec : copt.arrays)
            seen = seen || spec.name == array;
        if (!seen)
            copt.arrays.push_back({array, (1u << 16)});
    }

    try {
        compiler::CompileResult res = compiler::compile(loop, copt);
        out.name = name;
        out.program = std::move(res.program);
        out.ma = res.analysis.ma;
        out.sourceFlopsPerPoint = out.ma.flops();
        out.points = trip;
    } catch (const FatalError &e) {
        diags.error(detail::concat(name, ": ", e.what()));
        return false;
    }
    if (out.sourceFlopsPerPoint <= 0) {
        diags.error(detail::concat(
            name, ": loop has no floating-point work to analyze"));
        return false;
    }
    return true;
}

bool
kernelFromAsmSource(const std::string &text, const std::string &name,
                    long points, model::KernelCase &out,
                    Diagnostics &diags)
{
    Diagnostics file_diags;
    file_diags.setSource(text, name);
    isa::Program program = isa::assemble(text, file_diags);
    if (file_diags.hasErrors()) {
        diags.take(std::move(file_diags));
        return false;
    }
    try {
        program.validate();
    } catch (const FatalError &e) {
        diags.error(detail::concat(name, ": ", e.what()));
        return false;
    }

    out.name = name;
    out.program = std::move(program);
    out.ma = model::countAssembly(out.program.innerLoop());
    out.sourceFlopsPerPoint = out.ma.flops();
    out.points = points;
    if (out.sourceFlopsPerPoint <= 0) {
        diags.error(detail::concat(
            name,
            ": assembly has no floating-point work to analyze"));
        return false;
    }
    if (out.points <= 0) {
        diags.error(detail::concat(
            name, ": points must be positive to normalize CPF"));
        return false;
    }
    return true;
}

} // namespace macs::server
