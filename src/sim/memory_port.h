/**
 * @file
 * Timing model of the single CPU<->memory port and the interleaved,
 * refreshed memory system behind it.
 *
 * The C-240 memory has 32 banks of 8-byte words with an 8-cycle bank
 * busy time; with unit stride a port sustains one access per cycle. A
 * stride s visits banks/gcd(banks, s) distinct banks cyclically, so
 * strides sharing a large factor with the bank count reduce throughput
 * (e.g., stride 32 hits one bank and sustains one access per 8 cycles).
 *
 * Dynamic memory refresh occurs every refreshPeriodCycles and blocks
 * the port for refreshDurationCycles; refreshes that fall while the
 * port is idle are masked (paper section 3.2).
 *
 * Multi-processor contention is modeled by a rate multiplier (>= 1)
 * calibrated against the paper's observation that under load a port
 * sustains one access per 56-64 ns instead of per 40 ns cycle.
 */

#ifndef MACS_SIM_MEMORY_PORT_H
#define MACS_SIM_MEMORY_PORT_H

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "machine/machine_config.h"
#include "support/logging.h"

namespace macs::sim {

/** Timing of one serviced vector stream. */
struct StreamTiming
{
    double enter = 0;     ///< cycle the first element enters the port
    double rate = 1.0;    ///< cycles per element actually sustained
    double streamEnd = 0; ///< cycle the last element has entered
    double refreshStall = 0; ///< refresh cycles charged to this stream
};

/** Timing of one scalar access. */
struct ScalarAccessTiming
{
    double start = 0; ///< cycle the access wins the port
    double done = 0;  ///< cycle the port is free again
};

/**
 * Seam the multi-CPU coupling layer plugs into the reference
 * interpreter (SimOptions::externalPort): same operations as
 * MemoryPort plus the word address of each access, which the shared
 * memory system needs to map accesses onto banks other CPUs may hold
 * busy. Implementations must reproduce MemoryPort's arithmetic
 * bit-for-bit when no foreign CPU interferes — that degeneracy is the
 * `mp --cpus 1` == plain Simulator contract pinned by
 * tests/mp_differential_test.cc.
 */
class ExternalMemoryPort
{
  public:
    virtual ~ExternalMemoryPort() = default;

    /** MemoryPort::serviceStream + the stream's starting word. */
    virtual StreamTiming serviceStream(double earliest, int elements,
                                       int64_t stride_words,
                                       double rate_floor,
                                       uint64_t start_word) = 0;

    /** MemoryPort::serviceScalar + the accessed word. */
    virtual ScalarAccessTiming serviceScalar(double earliest,
                                             uint64_t word) = 0;

    /** Sustained cycles/element for @p stride_words (no contention). */
    virtual double strideRate(int64_t stride_words) const = 0;

    /** Earliest cycle a new access can win this CPU's port. */
    virtual double freeAt() const = 0;
};

/** The per-CPU memory port (stateful: tracks busy time and refresh). */
class MemoryPort
{
  public:
    MemoryPort(const machine::MemoryConfig &config,
               double contention_factor = 1.0);

    /**
     * Service a vector stream of @p elements words with word stride
     * @p stride_words, not before cycle @p earliest. The sustained
     * rate is max(@p rate_floor, stride rate * contention); a chained
     * producer slower than memory passes its rate in @p rate_floor.
     */
    StreamTiming serviceStream(double earliest, int elements,
                               int64_t stride_words,
                               double rate_floor = 1.0);

    /**
     * serviceStream() with the stride rate already resolved: callers
     * holding a precomputed per-residue schedule (bank_model.h's
     * strideRateTable, used by the simulator's fast tier) pass
     * strideRate(stride) through @p stride_rate and skip the per-
     * stream gcd recomputation. Arithmetic is identical to
     * serviceStream() — the two produce bit-identical StreamTimings
     * for stride_rate == strideRate(stride_words).
     */
    StreamTiming serviceStreamWithRate(double earliest, int elements,
                                       double stride_rate,
                                       double rate_floor = 1.0);

    /** Service one scalar access, not before cycle @p earliest. */
    ScalarAccessTiming serviceScalar(double earliest);

    /** Earliest cycle a new access can win the port. */
    double freeAt() const { return free_at_; }

    /** Sustained cycles/element for @p stride_words (no contention). */
    double strideRate(int64_t stride_words) const;

    /** Total refresh cycles charged so far. */
    double refreshStallTotal() const { return refresh_stall_total_; }

  private:
    /** Refresh cycles hitting a busy window [begin, nominal end). */
    double refreshStall(double begin, double end) const;

    /**
     * Advance the cached refresh-boundary cursor to the largest
     * period multiple <= @p x. Stream service times are monotone, so
     * the cursor only moves forward and the advance amortizes to O(1)
     * additions per stream; most streams then resolve their refresh
     * accounting against the cursor with no division at all.
     *
     * Exactness: refreshPeriodCycles is an integer, so every multiple
     * k*period is an exact double and the incremental sum equals the
     * floor(x/period)*period the direct computation produces bit for
     * bit (the quotient can never round across an exactly
     * representable integer boundary).
     */
    void
    advanceRefreshCursor(double x) const
    {
        double period = config_.refreshPeriodCycles;
        if (x - refresh_cursor_ > 64.0 * period)
            refresh_cursor_ = std::floor(x / period) * period;
        while (refresh_cursor_ + period <= x)
            refresh_cursor_ += period;
    }

    machine::MemoryConfig config_;
    double contention_;
    double free_at_ = 0.0;
    double refresh_stall_total_ = 0.0;
    /// Largest refresh-period multiple seen (cache; see advance above).
    mutable double refresh_cursor_ = 0.0;
};

// The stream-service path is defined inline: the fast tier calls it
// once per vector memory instruction from its dispatch loop, where the
// out-of-line call was a measurable fraction of the per-instruction
// cost. The arithmetic (expressions and evaluation order) is the bit-
// exactness contract — keep it byte-for-byte in sync with the
// reference expectations pinned by tests/sim_differential_test.cc.

inline double
MemoryPort::refreshStall(double begin, double end) const
{
    if (!config_.refreshEnabled || end <= begin)
        return 0.0;
    // Count refresh boundaries in (begin, end]; each steals the full
    // refresh duration from the stream. Because the stall itself
    // extends the busy window, iterate until no new boundary is hit.
    double period = config_.refreshPeriodCycles;
    double duration = config_.refreshDurationCycles;
    // No boundary inside (begin, end]: zero stall, no division. The
    // iteration below would compute first = k+1, last = k and stop
    // with stall 0 — this is the same answer without the floor()s.
    advanceRefreshCursor(begin);
    if (end < refresh_cursor_ + period)
        return 0.0;
    double stall = 0.0;
    long first = static_cast<long>(std::floor(begin / period)) + 1;
    long last = static_cast<long>(std::floor((end + stall) / period));
    while (true) {
        long count = std::max(0L, last - first + 1);
        double new_stall = duration * static_cast<double>(count);
        long new_last =
            static_cast<long>(std::floor((end + new_stall) / period));
        if (new_last == last) {
            stall = new_stall;
            break;
        }
        last = new_last;
    }
    return stall;
}

inline StreamTiming
MemoryPort::serviceStreamWithRate(double earliest, int elements,
                                  double stride_rate, double rate_floor)
{
    MACS_ASSERT(elements > 0, "empty vector stream");
    StreamTiming t;
    double prev_busy_end = free_at_;
    t.enter = std::max(earliest, free_at_);
    if (config_.refreshEnabled) {
        // A refresh in progress when the stream wants to start delays
        // it: an 8-cycle refresh cannot hide in the few-cycle bubble
        // between back-to-back streams. Boundaries at or before the
        // previous stream's end were already charged to that stream;
        // boundaries while the port was idle long before this stream
        // are masked.
        double duration = config_.refreshDurationCycles;
        advanceRefreshCursor(t.enter);
        double boundary = refresh_cursor_;
        if (boundary > prev_busy_end && boundary + duration > t.enter) {
            // Full-duration charge: once a refresh interrupts pending
            // traffic the controller restarts the access stream after
            // the complete refresh (the paper conjectures a similar
            // handshaking restart penalty for stalled instructions).
            t.enter += duration;
            t.refreshStall += duration;
        }
    }
    t.rate = std::max(rate_floor, stride_rate * contention_);
    double nominal_end = t.enter + t.rate * elements;
    double in_stream = refreshStall(t.enter, nominal_end);
    t.refreshStall += in_stream;
    t.streamEnd = nominal_end + in_stream;
    free_at_ = t.streamEnd;
    refresh_stall_total_ += t.refreshStall;
    return t;
}

inline ScalarAccessTiming
MemoryPort::serviceScalar(double earliest)
{
    ScalarAccessTiming t;
    t.start = std::max(earliest, free_at_);
    // One access: the port is reusable after a couple of cycles; the
    // bank stays busy longer but back-to-back same-bank scalar traffic
    // is negligible in the studied loops.
    t.done = t.start + 2.0 * contention_;
    free_at_ = t.done;
    return t;
}

} // namespace macs::sim

#endif // MACS_SIM_MEMORY_PORT_H
