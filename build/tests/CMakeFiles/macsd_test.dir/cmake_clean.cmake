file(REMOVE_RECURSE
  "CMakeFiles/macsd_test.dir/macsd_test.cc.o"
  "CMakeFiles/macsd_test.dir/macsd_test.cc.o.d"
  "macsd_test"
  "macsd_test.pdb"
  "macsd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
