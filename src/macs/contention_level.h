/**
 * @file
 * The C level of the MACS hierarchy: extend a kernel's t_MACS bound
 * with multi-CPU memory contention (paper section 4.2).
 *
 * t_MACS charges vector memory at the port's peak rate — one element
 * per cycle at unit stride. When P CPUs share the banks the memory
 * stream slows by the contention factor f while compute is untouched,
 * so only the memory component of the bound stretches:
 *
 *     t_MACS^C = t_MACS + (f - 1) * t_MACS^m
 *
 * where t_MACS^m (the access-process bound) isolates exactly the
 * cycles the memory port is responsible for. With f = 1 (one CPU)
 * the level degenerates to t_MACS identically.
 *
 * Gap attribution then splits a measured-under-contention time t_C
 * the same way section 4.4 splits t_p: the contention layer explains
 * t_MACS^C - t_MACS of it, and whatever exceeds t_MACS^C is
 * unmodeled coupling (irregular bank collisions, arbitration
 * restarts, refresh phase beats) that only the cycle-coupled
 * simulator (sim/mp/) reproduces.
 */

#ifndef MACS_MACS_CONTENTION_LEVEL_H
#define MACS_MACS_CONTENTION_LEVEL_H

#include <string>

#include "macs/hierarchy.h"
#include "sim/contention.h"

namespace macs::model {

/** One kernel's C-level extension of the MACS hierarchy. */
struct ContentionLevel
{
    std::string kernel;
    int cpus = 1;
    sim::WorkloadMix mix = sim::WorkloadMix::Independent;

    double factor = 1.0; ///< memory-stream slowdown f applied
    double tMACS = 0.0;  ///< the uncontended bound (CPL)
    double tMACSm = 0.0; ///< access-process bound t_MACS^m (CPL)
    double macsC = 0.0;  ///< t_MACS^C = tMACS + (f-1)*tMACSm (CPL)

    /**
     * Measured time under contention (CPL); 0 when the level is
     * evaluated bound-only. Callers take it from the cycle-coupled
     * simulator (sim/mp/runCoupled) or the analytic fixed point
     * (sim/runMultiCpu).
     */
    double tC = 0.0;

    /** Bound growth the contention layer itself explains (CPL). */
    double
    contentionGap() const
    {
        return macsC - tMACS;
    }

    /** Measured time past the C bound — unmodeled coupling (CPL). */
    double
    unmodeledGap() const
    {
        return tC > 0.0 ? tC - macsC : 0.0;
    }

    /** Fraction of measured contended time the C bound explains. */
    double
    coverage() const
    {
        return tC > 0.0 ? macsC / tC : 0.0;
    }
};

/**
 * Evaluate the C level for @p analysis at @p cpus active CPUs using
 * the calibrated analytic factor for @p mix (sim::contentionFactor).
 * Pass @p measured_tc_cpl when a contended measurement exists; 0
 * leaves the level bound-only.
 */
ContentionLevel contentionLevel(const KernelAnalysis &analysis,
                                int cpus, sim::WorkloadMix mix,
                                double measured_tc_cpl = 0.0);

/**
 * Same, but with an explicitly supplied slowdown factor — used to
 * feed back a factor observed by the cycle-coupled simulator
 * (per-access cycles relative to peak) instead of the calibration.
 */
ContentionLevel contentionLevelWithFactor(
    const KernelAnalysis &analysis, int cpus, sim::WorkloadMix mix,
    double factor, double measured_tc_cpl = 0.0);

/** Render a short human-readable block (report appendix style). */
std::string renderContentionLevel(const ContentionLevel &level);

} // namespace macs::model

#endif // MACS_MACS_CONTENTION_LEVEL_H
