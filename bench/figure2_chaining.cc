/**
 * @file
 * Reproduces paper Figure 2: chaining with tailgating in the function
 * unit pipelines. Runs the section 3.3 example (ld -> add -> mul, then
 * the identical chime again) and prints the simulator's timeline plus
 * the milestone cycle counts the paper derives (162 cycles for the
 * first chained chime, VL + bubbles = 132 for the steady state, 422
 * without chaining).
 */

#include <cstdio>

#include "isa/parser.h"
#include "machine/machine_config.h"
#include "sim/simulator.h"

int
main()
{
    using namespace macs;

    std::printf("=== Figure 2: Chaining with tailgating ===\n\n");

    const char *text = R"(
.comm data,2048
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
    ld.l data+1024(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
)";

    machine::MachineConfig cfg = machine::MachineConfig::noRefresh();
    isa::Program prog = isa::assemble(text);
    sim::SimOptions opt;
    opt.trace = true;
    sim::Simulator sim(cfg, prog, opt);
    sim.run();

    std::printf("%s\n", sim.timeline().render(12, 6.0).c_str());

    const auto &ev = sim.timeline().events();
    double t0 = ev[0].issue;
    std::printf("chime 1 (ld -> add -> mul, chained):\n");
    std::printf("  ld first element      : cycle %5.0f (paper: 12)\n",
                ev[0].firstResult - t0);
    std::printf("  add enters (chains)   : cycle %5.0f (paper: 12)\n",
                ev[1].enter - t0);
    std::printf("  mul enters (chains)   : cycle %5.0f (paper: 22)\n",
                ev[2].enter - t0);
    std::printf("  mul completes         : cycle %5.0f (paper: 162)\n",
                ev[2].complete - t0);
    std::printf("chime 2 (identical, tailgating):\n");
    std::printf("  ld blocks, enters     : cycle %5.0f (paper: ~132)\n",
                ev[3].enter - t0);
    std::printf("  chime-to-chime time   : %5.0f cycles "
                "(paper: VL + bubbles = 132)\n",
                ev[5].complete - ev[2].complete);

    // Without chaining each instruction waits for its producer.
    isa::Program prog2 = isa::assemble(R"(
.comm data,2048
    mov #128,s6
    mov s6,VL
    ld.l data(a5),v0
    add.d v0,v1,v2
    mul.d v2,v3,v5
)");
    machine::MachineConfig unchained = machine::MachineConfig::noChaining();
    unchained.memory.refreshEnabled = false;
    sim::SimOptions opt2;
    opt2.trace = true;
    sim::Simulator sim2(unchained, prog2, opt2);
    sim2.run();
    const auto &ev2 = sim2.timeline().events();
    std::printf("without chaining: same three instructions take "
                "%5.0f cycles (paper: 422)\n",
                ev2[2].complete - ev2[0].issue);
    return 0;
}
