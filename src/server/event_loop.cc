#include "server/event_loop.h"

#include <cerrno>
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <utility>

#include "server/connection.h"
#include "server/net.h"
#include "server/server.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::server {

namespace {

using Clock = std::chrono::steady_clock;

/** Poller wait slice: bounds deadline-detection latency. */
constexpr int kWaitSliceMs = 50;

/** Wakeup doorbell sentinel in the poller's data slot. */
void *
wakeupToken()
{
    return nullptr;
}

/** Conn fds ride in the data slot offset by 1 so fd 0 != sentinel. */
void *
encodeFd(int fd)
{
    return reinterpret_cast<void *>(static_cast<intptr_t>(fd) + 1);
}

int
decodeFd(void *data)
{
    return static_cast<int>(reinterpret_cast<intptr_t>(data)) - 1;
}

} // namespace

/**
 * One event-loop shard: a thread around an EventPoller owning a set
 * of connections. All Conn state is touched ONLY on the shard thread;
 * the acceptor and compute workers communicate through the
 * mutex-guarded inbox + Wakeup doorbell.
 */
class EventLoopCore::Shard
{
  public:
    Shard(EventLoopCore &core, Server &server, size_t index,
          EventPoller::Backend backend)
        : core_(core), server_(server), index_(index),
          poller_(backend),
          connGauge_(server.metricsRegistry().gauge(
              "macs_server_shard_connections",
              "Connections owned per event-loop shard",
              obs::Labels{{"shard", std::to_string(index)}})),
          pollWakeups_(server.metricsRegistry().counter(
              "macs_server_poll_wakeups_total",
              "Poller waits that returned at least one event",
              obs::Labels{{"shard", std::to_string(index)}})),
          notifyWakeups_(server.metricsRegistry().counter(
              "macs_server_notify_wakeups_total",
              "Doorbell wakeups from acceptor/compute threads",
              obs::Labels{{"shard", std::to_string(index)}}))
    {
    }

    void start()
    {
        thread_ = std::thread([this] { loop(); });
    }

    /** Acceptor side: enqueue a connection and ring the doorbell. */
    void adopt(int fd)
    {
        {
            std::lock_guard<std::mutex> lock(inboxMu_);
            newFds_.push_back(fd);
        }
        wakeup_.notify();
    }

    /** Compute side: post a finished response back to the shard. */
    void postResponse(int fd, uint64_t gen, HttpResponse response,
                      bool keep_alive_requested)
    {
        {
            std::lock_guard<std::mutex> lock(inboxMu_);
            completions_.push_back(Completion{
                fd, gen, std::move(response), keep_alive_requested});
        }
        wakeup_.notify();
    }

    void kick() { wakeup_.notify(); }

    void join()
    {
        if (thread_.joinable())
            thread_.join();
    }

  private:
    struct Completion
    {
        int fd;
        uint64_t gen;
        HttpResponse response;
        bool keepAliveRequested;
    };

    /** One owned connection; ByteIo over its non-blocking socket. */
    struct Conn final : ByteIo
    {
        Conn(int fd_in, uint64_t gen_in,
             RequestParser::Limits limits)
            : fd(fd_in), gen(gen_in), machine(limits)
        {
        }

        int read(char *buf, size_t len) override
        {
            for (;;) {
                ssize_t n = ::recv(fd, buf, len, 0);
                if (n >= 0)
                    return static_cast<int>(n);
                if (errno == EINTR)
                    continue;
                return errno == EAGAIN || errno == EWOULDBLOCK
                           ? kWouldBlock
                           : kError;
            }
        }

        int write(const char *buf, size_t len) override
        {
            for (;;) {
                ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
                if (n >= 0)
                    return static_cast<int>(n);
                if (errno == EINTR)
                    continue;
                return errno == EAGAIN || errno == EWOULDBLOCK
                           ? kWouldBlock
                           : kError;
            }
        }

        int fd;
        uint64_t gen;
        Connection machine;
        Clock::time_point readDeadline{};
        Clock::time_point writeDeadline{};
        bool wantWrite = false;
    };

    Conn *find(int fd)
    {
        auto it = conns_.find(fd);
        return it != conns_.end() ? it->second.get() : nullptr;
    }

    void loop()
    {
        poller_.add(wakeup_.fd(), false, wakeupToken());
        std::vector<PollEvent> events;
        for (;;) {
            int n = poller_.wait(events, kWaitSliceMs);
            if (n > 0)
                pollWakeups_.inc();
            for (const PollEvent &e : events) {
                if (e.data == wakeupToken()) {
                    wakeup_.drain();
                    notifyWakeups_.inc();
                    continue;
                }
                // Look the fd up again: an earlier event in this
                // batch may have closed (and freed) the connection.
                Conn *c = find(decodeFd(e.data));
                if (c == nullptr)
                    continue;
                if (c->machine.state() == Connection::State::Write) {
                    if (e.error)
                        closeConn(c->fd);
                    else
                        flush(*c);
                } else if (e.error &&
                           c->machine.state() ==
                               Connection::State::Compute) {
                    // Peer vanished mid-compute: drop the connection;
                    // the generation check discards the response.
                    closeConn(c->fd);
                } else {
                    handleReadable(*c);
                }
            }
            drainInbox();
            checkDeadlines();
            if (server_.stopping()) {
                closeIdleConns();
                std::lock_guard<std::mutex> lock(inboxMu_);
                if (conns_.empty() && pendingCompute_ == 0 &&
                    newFds_.empty() && completions_.empty())
                    break;
            }
        }
        poller_.del(wakeup_.fd());
    }

    void drainInbox()
    {
        std::vector<int> fds;
        std::vector<Completion> done;
        {
            std::lock_guard<std::mutex> lock(inboxMu_);
            fds.swap(newFds_);
            done.swap(completions_);
        }
        for (int fd : fds)
            adoptLocal(fd);
        for (Completion &c : done)
            applyCompletion(std::move(c));
    }

    void adoptLocal(int fd)
    {
        if (!setNonBlocking(fd) ||
            !poller_.add(fd, false, encodeFd(fd))) {
            closeFd(fd);
            core_.connections_.fetch_sub(1,
                                         std::memory_order_acq_rel);
            return;
        }
        auto conn = std::make_unique<Conn>(
            fd, nextGen_++, server_.options().limits);
        conn->readDeadline =
            Clock::now() + std::chrono::milliseconds(
                               server_.options().requestTimeoutMs);
        Conn *raw = conn.get();
        conns_.emplace(fd, std::move(conn));
        connGauge_.set(static_cast<double>(conns_.size()));
        // The socket may already hold bytes (or EOF): with an
        // edge-triggered poller that edge predates registration, so
        // drain once now.
        handleReadable(*raw);
    }

    void applyCompletion(Completion &&done)
    {
        --pendingCompute_;
        Conn *c = find(done.fd);
        if (c == nullptr || c->gen != done.gen)
            return; // connection died while computing
        bool keep = done.keepAliveRequested && !server_.stopping();
        respond(*c, done.response, keep);
    }

    void handleReadable(Conn &c)
    {
        switch (c.machine.onReadable(c)) {
        case Connection::ReadEvent::NeedMore:
            return;
        case Connection::ReadEvent::RequestReady:
            dispatch(c);
            return;
        case Connection::ReadEvent::ParseError: {
            HttpResponse r = errorResponse(c.machine.errorStatus(),
                                           c.machine.errorDetail());
            server_.countRequest("other", r.status);
            respond(c, r, false);
            return;
        }
        case Connection::ReadEvent::PeerClosed:
            closeConn(c.fd);
            return;
        case Connection::ReadEvent::TornRequest:
            // The peer closed mid-message: count it like the 408
            // path, close without a response (matching the
            // thread-per-session core byte for byte).
            server_.countRequest("other", 408);
            closeConn(c.fd);
            return;
        case Connection::ReadEvent::IoError:
            closeConn(c.fd);
            return;
        }
    }

    void dispatch(Conn &c)
    {
        HttpRequest request = c.machine.takeRequest();
        if (server_.faultInjector().shouldFire(
                faults::Site::NetRead)) {
            // Injected read fault: the request is NOT silently
            // dropped — the client gets an explicit retriable 503.
            HttpResponse r =
                errorResponse(503, "transient read fault; retry");
            r.headers.emplace_back(
                "Retry-After",
                std::to_string(
                    server_.options().retryAfterSeconds));
            server_.countRequest(routeLabel(request.path),
                                 r.status);
            respond(c, r, false);
            return;
        }
        ++pendingCompute_;
        int fd = c.fd;
        uint64_t gen = c.gen;
        bool ka = request.keepAlive;
        server_.computePool().submit(
            [this, fd, gen, ka, request = std::move(request)] {
                obs::Gauge &inflight =
                    server_.metricsRegistry().gauge(
                        "macs_server_inflight",
                        "Requests currently executing");
                inflight.add(1.0);
                HttpResponse response;
                try {
                    response = server_.handle(request);
                } catch (const std::exception &e) {
                    response = errorResponse(500, e.what());
                    server_.countRequest(routeLabel(request.path),
                                         500);
                }
                inflight.add(-1.0);
                postResponse(fd, gen, std::move(response), ka);
            });
        server_.metricsRegistry()
            .gauge("macs_server_queue_depth",
                   "Accepted sessions waiting for a worker")
            .set(static_cast<double>(
                server_.computePool().queuedTasks()));
    }

    /** NetWrite fault check + serialize + flush (all deliveries). */
    void respond(Conn &c, const HttpResponse &response, bool keep)
    {
        if (server_.faultInjector().shouldFire(
                faults::Site::NetWrite)) {
            closeConn(c.fd); // injected write fault: cut the line
            return;
        }
        c.machine.queueResponse(response, keep);
        c.writeDeadline =
            Clock::now() + std::chrono::milliseconds(
                               server_.options().writeTimeoutMs);
        flush(c);
    }

    void flush(Conn &c)
    {
        switch (c.machine.onWritable(c)) {
        case Connection::WriteEvent::Blocked:
            setWantWrite(c, true);
            return;
        case Connection::WriteEvent::KeepAlive:
            setWantWrite(c, false);
            c.readDeadline =
                Clock::now() +
                std::chrono::milliseconds(
                    server_.options().requestTimeoutMs);
            // A pipelined request may already be buffered; also
            // re-drain the socket so no edge is lost.
            handleReadable(c);
            return;
        case Connection::WriteEvent::Closing:
        case Connection::WriteEvent::IoError:
            closeConn(c.fd);
            return;
        }
    }

    void setWantWrite(Conn &c, bool want)
    {
        if (c.wantWrite == want)
            return;
        c.wantWrite = want;
        poller_.mod(c.fd, want, encodeFd(c.fd));
    }

    void checkDeadlines()
    {
        Clock::time_point now = Clock::now();
        std::vector<int> quiet, torn, stuck;
        for (const auto &[fd, c] : conns_) {
            switch (c->machine.state()) {
            case Connection::State::ReadHeaders:
            case Connection::State::ReadBody:
                if (now >= c->readDeadline)
                    (c->machine.midRequest() ? torn : quiet)
                        .push_back(fd);
                break;
            case Connection::State::Write:
                if (now >= c->writeDeadline)
                    stuck.push_back(fd);
                break;
            case Connection::State::Compute:
            case Connection::State::Closed:
                break;
            }
        }
        for (int fd : quiet)
            closeConn(fd); // idle keep-alive expiry: close quietly
        for (int fd : stuck)
            closeConn(fd); // write deadline: peer too slow to read
        for (int fd : torn) {
            Conn *c = find(fd);
            if (c == nullptr)
                continue;
            HttpResponse r = errorResponse(
                408,
                format("request not complete within the %d ms read "
                       "deadline",
                       server_.options().requestTimeoutMs));
            server_.countRequest("other", 408);
            respond(*c, r, false);
        }
    }

    void closeIdleConns()
    {
        std::vector<int> idle;
        for (const auto &[fd, c] : conns_) {
            Connection::State s = c->machine.state();
            if ((s == Connection::State::ReadHeaders ||
                 s == Connection::State::ReadBody) &&
                !c->machine.midRequest())
                idle.push_back(fd);
        }
        for (int fd : idle)
            closeConn(fd);
    }

    void closeConn(int fd)
    {
        auto it = conns_.find(fd);
        if (it == conns_.end())
            return;
        poller_.del(fd);
        closeFd(fd);
        conns_.erase(it);
        connGauge_.set(static_cast<double>(conns_.size()));
        core_.connections_.fetch_sub(1, std::memory_order_acq_rel);
    }

    EventLoopCore &core_;
    Server &server_;
    size_t index_;
    EventPoller poller_;
    Wakeup wakeup_;
    std::thread thread_;

    std::mutex inboxMu_;
    std::vector<int> newFds_;            ///< guarded by inboxMu_
    std::vector<Completion> completions_; ///< guarded by inboxMu_

    // Shard-thread-only state.
    std::map<int, std::unique_ptr<Conn>> conns_;
    size_t pendingCompute_ = 0;
    uint64_t nextGen_ = 1;

    obs::Gauge &connGauge_;
    obs::Counter &pollWakeups_;
    obs::Counter &notifyWakeups_;
};

EventLoopCore::EventLoopCore(Server &server, size_t shard_count,
                             EventPoller::Backend backend)
    : server_(server)
{
    MACS_ASSERT(shard_count >= 1, "event loop needs >= 1 shard");
    shards_.reserve(shard_count);
    for (size_t i = 0; i < shard_count; ++i)
        shards_.push_back(
            std::make_unique<Shard>(*this, server, i, backend));
}

EventLoopCore::~EventLoopCore()
{
    requestStop();
    join();
}

void
EventLoopCore::start()
{
    for (auto &shard : shards_)
        shard->start();
}

void
EventLoopCore::adopt(int fd)
{
    connections_.fetch_add(1, std::memory_order_acq_rel);
    size_t i = nextShard_.fetch_add(1, std::memory_order_relaxed) %
               shards_.size();
    shards_[i]->adopt(fd);
}

void
EventLoopCore::requestStop()
{
    for (auto &shard : shards_)
        shard->kick();
}

void
EventLoopCore::join()
{
    for (auto &shard : shards_)
        shard->join();
}

} // namespace macs::server
