/**
 * @file
 * Process-wide metrics registry: counters, gauges, and histograms
 * with label sets, a lock-free hot path, and deterministic snapshots.
 *
 * Design (docs/OBSERVABILITY.md):
 *  - A metric is identified by (name, canonical label set). Lookup /
 *    creation takes the registry mutex once; the returned reference is
 *    stable for the registry's lifetime, and every subsequent
 *    inc()/set()/observe() is a plain atomic operation — no lock, no
 *    allocation — so instrumenting the simulator inner loop or the
 *    pipeline workers costs a few nanoseconds.
 *  - Label sets are canonicalized (sorted by key, duplicate keys
 *    rejected), so {a=1,b=2} and {b=2,a=1} alias the same series.
 *  - snapshot() returns samples sorted by (name, label key): exporters
 *    built on it (obs/export.h) are byte-deterministic for identical
 *    registry contents, independent of registration or thread order.
 *  - Registering the same name with a different kind (or a histogram
 *    with different bucket edges) is a programming error: panic().
 *
 * There is one process-global registry (Registry::global()) that the
 * pipeline engine and CLI default to; tests and deterministic exports
 * use private Registry instances.
 */

#ifndef MACS_OBS_METRICS_H
#define MACS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace macs::obs {

/** Canonical (sorted, unique-key) set of label key/value pairs. */
class Labels
{
  public:
    Labels() = default;
    Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

    /** Set (or overwrite) one label. Keys must be non-empty. */
    Labels &set(const std::string &key, const std::string &value);

    const std::vector<std::pair<std::string, std::string>> &pairs() const
    {
        return kv_;
    }

    bool empty() const { return kv_.empty(); }

    /**
     * Canonical text form `k1=v1,k2=v2` (keys sorted). Two Labels with
     * equal key() identify the same time series.
     */
    std::string key() const;

    bool operator==(const Labels &other) const
    {
        return kv_ == other.kv_;
    }

  private:
    std::vector<std::pair<std::string, std::string>> kv_; // sorted
};

/** Monotonically increasing value. Thread-safe, lock-free. */
class Counter
{
  public:
    /** Add @p v (must be >= 0) to the counter. */
    void inc(double v = 1.0);

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Last-write-wins instantaneous value. Thread-safe, lock-free. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double v);

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * value <= edges[i] (Prometheus `le` semantics, edges ascending); one
 * implicit +inf overflow bucket follows. Thread-safe, lock-free.
 */
class Histogram
{
  public:
    explicit Histogram(std::span<const double> edges);

    void observe(double v);

    const std::vector<double> &edges() const { return edges_; }

    /** Per-bucket (non-cumulative) counts; size() == edges+1. */
    std::vector<uint64_t> bucketCounts() const;

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const { return sum_.load(std::memory_order_relaxed); }

  private:
    std::vector<double> edges_;
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Metric kinds (for snapshots and kind-mismatch checks). */
enum class MetricKind : uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

/** Human-readable kind name ("counter", "gauge", "histogram"). */
const char *metricKindName(MetricKind kind);

/** One exported time series (see Registry::snapshot()). */
struct Sample
{
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::Counter;
    Labels labels;

    /** Counter/gauge value; histogram sum. */
    double value = 0.0;

    /** Histogram-only: edges and per-bucket counts (+inf last). */
    std::vector<double> bucketEdges;
    std::vector<uint64_t> bucketCounts;
    uint64_t observationCount = 0;
};

/**
 * A family of metrics sharing a name, help text, kind, and (for
 * histograms) bucket edges, fanned out by label set.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Find or create a metric. The returned reference stays valid for
     * the registry's lifetime. panic()s when @p name already exists
     * with a different kind (or different histogram edges).
     * @{
     */
    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::span<const double> edges,
                         const Labels &labels = {});
    /** @} */

    /** Number of registered time series (across all families). */
    size_t seriesCount() const;

    /**
     * Deterministic snapshot: one Sample per series, sorted by
     * (name, canonical label key).
     */
    std::vector<Sample> snapshot() const;

    /** The process-wide default registry. */
    static Registry &global();

  private:
    struct Family
    {
        std::string help;
        MetricKind kind = MetricKind::Counter;
        std::vector<double> edges; // histograms only
        // Stable addresses: never erased, unique_ptr storage.
        std::map<std::string, std::unique_ptr<Counter>> counters;
        std::map<std::string, std::unique_ptr<Gauge>> gauges;
        std::map<std::string, std::unique_ptr<Histogram>> histograms;
        std::map<std::string, Labels> labels; // key -> parsed labels
    };

    Family &family(const std::string &name, const std::string &help,
                   MetricKind kind, std::span<const double> edges);

    mutable std::mutex mu_;
    std::map<std::string, Family> families_;
};

} // namespace macs::obs

#endif // MACS_OBS_METRICS_H
