/**
 * @file
 * Multi-CPU memory contention: the cycle-coupled shared-bank engine
 * (sim/mp/) against the paper's section-4.2 observations and the
 * MACS C-level bound, Table-4 style.
 *
 * For 1/2/4 CPUs in the independent and lock-step mixes the bench
 * runs a fleet of the memory-saturated LFK1 through runCoupled and
 * reports per-access time (the paper's 40 ns peak vs its 56-64 ns
 * multi-user band), run-time degradation, collision counts, and the
 * analytic t_MACS^C bound next to the emergent measurement. A strip
 * section splits one LFK1 across four CPUs. Every number here is
 * deterministic — the coupled engine commits accesses in a global
 * (time, cpu) order — so the gated metrics are exact model
 * properties, not wall-clock samples.
 *
 * Hard bands (the bench exits nonzero outside them):
 *  - four independent memory-saturated CPUs: 56-64 ns per access
 *    (1.4-1.6x the 40 ns peak);
 *  - a mixed four-process fleet (LFK 1, 7, 5, 11 — the paper's
 *    multi-user setting: one memory-saturated stream, one FP-bound
 *    vector kernel and two scalar-dominated kernels whose sparse
 *    access streams mask most of the port pressure): roughly 20%
 *    run-time degradation;
 *  - four lock-step CPUs: at or below the paper's 5-10% band and
 *    strictly below independent. Bank-aligned copies interleave
 *    almost perfectly here (~1%); see docs/MULTICPU.md for why the
 *    zero-slack 4x8=32 geometry makes the 5-10% midpoint an
 *    unstable target.
 *
 * `--json PATH` writes schema "macs-bench-mp-contention-v1" for
 * scripts/perf_gate.py. Gated metrics are margins against the band
 * edges (value/edge ratios, higher is better), so a calibration
 * regression trips the gate before it drifts out of band.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "lfk/kernels.h"
#include "lfk/mp_workload.h"
#include "machine/machine_config.h"
#include "macs/contention_level.h"
#include "sim/contention.h"
#include "sim/mp/coupled.h"
#include "sim/simulator.h"
#include "support/strings.h"
#include "support/table.h"

namespace {

using namespace macs;

// Paper section 4.2: one access per 56-64 ns against the 40 ns peak.
constexpr double kBandLowNs = 56.0;
constexpr double kBandHighNs = 64.0;
// "Roughly 20%" multi-user degradation, measured on a mixed fleet —
// a saturated all-LFK1 fleet sits well above it (as it must: 1.4x
// per access at ~90% port utilization compounds to ~40%+).
constexpr double kMixedDegradationLow = 0.12;
constexpr double kMixedDegradationHigh = 0.32;
// Lock step must beat the paper's 5-10% upper edge; the bank-aligned
// interleave achieves ~1% (the collision-free steady state).
constexpr double kLockStepDegradationHigh = 0.11;

struct MixPoint
{
    int cpus = 1;
    double meanCycles = 0.0;
    double degradation = 0.0; ///< meanCycles / solo - 1
    double perAccessNs = 0.0; ///< mean over CPUs
    uint64_t collisions = 0;
    double boundCpl = 0.0;    ///< t_MACS^C at the analytic factor
};

double
soloCycles(const lfk::Kernel &k, const machine::MachineConfig &cfg)
{
    sim::SimOptions opt;
    opt.tier = sim::SimTier::Reference;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    return s.run().cycles;
}

MixPoint
measure(int kernel_id, lfk::MpMix mix, int cpus,
        const machine::MachineConfig &cfg, double solo,
        const model::KernelAnalysis &analysis)
{
    lfk::MpWorkload w = lfk::buildMpWorkload(kernel_id, mix, cpus);
    sim::mp::CoupledResult res = sim::mp::runCoupled(w.jobs, cfg, {});

    MixPoint p;
    p.cpus = cpus;
    double ns_sum = 0.0;
    for (const sim::mp::CoupledCpuResult &c : res.cpus) {
        p.meanCycles += c.stats.cycles;
        ns_sum += c.shared.perAccessCycles() * cfg.clockNs();
        p.collisions += c.shared.collisions;
    }
    p.meanCycles /= static_cast<double>(cpus);
    p.perAccessNs = ns_sum / static_cast<double>(cpus);
    p.degradation = p.meanCycles / solo - 1.0;

    sim::WorkloadMix wm;
    if (lfk::toWorkloadMix(mix, wm))
        p.boundCpl = model::contentionLevel(analysis, cpus, wm).macsC;
    return p;
}

/**
 * The paper's multi-user setting: four different programs sharing the
 * machine. Degradation is the mean per-CPU slowdown against each
 * kernel's own solo run.
 */
struct MixedFleet
{
    std::vector<int> ids;
    double degradation = 0.0;
    uint64_t collisions = 0;
};

MixedFleet
measureMixed(const std::vector<int> &ids,
             const machine::MachineConfig &cfg)
{
    lfk::MpWorkload w = lfk::buildMpMixedWorkload(ids);
    sim::mp::CoupledResult res = sim::mp::runCoupled(w.jobs, cfg, {});
    MixedFleet m;
    m.ids = ids;
    for (size_t i = 0; i < ids.size(); ++i) {
        double solo = soloCycles(w.kernels[i], cfg);
        m.degradation += res.cpus[i].stats.cycles / solo - 1.0;
        m.collisions += res.cpus[i].shared.collisions;
    }
    m.degradation /= static_cast<double>(ids.size());
    return m;
}

bool
writeJson(const std::string &path, const MixPoint &indep,
          const MixPoint &lock, const MixedFleet &mixed,
          double strip_speedup)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n"
        << "  \"schema\": \"macs-bench-mp-contention-v1\",\n"
        << "  \"gated\": {\n"
        << format("    \"mp_indep_band_low_margin\": %.3f,\n",
                  indep.perAccessNs / kBandLowNs)
        << format("    \"mp_indep_band_high_margin\": %.3f,\n",
                  kBandHighNs / indep.perAccessNs)
        << format("    \"mp_mixed_degradation_margin\": %.3f,\n",
                  mixed.degradation / kMixedDegradationLow)
        << format("    \"mp_lockstep_headroom\": %.3f,\n",
                  kLockStepDegradationHigh /
                      std::max(lock.degradation, 1e-4))
        << format("    \"mp_strip_speedup\": %.3f\n", strip_speedup)
        << "  },\n"
        << "  \"informative\": {\n"
        << format("    \"mp_indep_per_access_ns\": %.2f,\n",
                  indep.perAccessNs)
        << format("    \"mp_indep_degradation\": %.4f,\n",
                  indep.degradation)
        << format("    \"mp_mixed_degradation\": %.4f,\n",
                  mixed.degradation)
        << format("    \"mp_lockstep_degradation\": %.4f,\n",
                  lock.degradation)
        << format("    \"mp_indep_collisions\": %llu\n",
                  static_cast<unsigned long long>(indep.collisions))
        << "  }\n"
        << "}\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: mp_contention [--json PATH]\n");
            return 1;
        }
    }

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    constexpr int kKernel = 1; // LFK1: memory-saturated inner loop
    lfk::Kernel k = lfk::makeKernel(kKernel);
    double solo = soloCycles(k, cfg);
    model::KernelAnalysis analysis =
        model::analyzeKernel(lfk::toKernelCase(k), cfg);

    std::printf("=== Multi-CPU contention: coupled banks vs the "
                "paper's 56-64 ns band ===\n\n");
    std::printf("machine %s: %d CPUs, %d banks, bank busy %d cycles, "
                "arbitration restart %d cycles\n",
                "c240", cfg.cpus, cfg.memory.banks,
                cfg.memory.bankBusyCycles,
                cfg.memory.arbitrationRestartCycles);
    std::printf("workload: %d x %s, solo %.0f cycles, peak %.0f ns "
                "per access\n\n",
                cfg.cpus, k.name.c_str(), solo, cfg.clockNs());

    Table t({"mix", "cpus", "mean cycles", "degradation", "ns/access",
             "collisions", "t_MACS^C"});
    MixPoint indep4, lock4;
    for (lfk::MpMix mix :
         {lfk::MpMix::Independent, lfk::MpMix::LockStep}) {
        for (int cpus : {1, 2, 4}) {
            MixPoint p = measure(kKernel, mix, cpus, cfg, solo,
                                 analysis);
            t.addRow({lfk::mpMixName(mix), Table::num(long(cpus)),
                      Table::num(p.meanCycles, 0),
                      format("%+.1f%%", 100.0 * p.degradation),
                      Table::num(p.perAccessNs, 1),
                      Table::num(long(p.collisions)),
                      Table::num(p.boundCpl, 3)});
            if (cpus == 4 && mix == lfk::MpMix::Independent)
                indep4 = p;
            if (cpus == 4 && mix == lfk::MpMix::LockStep)
                lock4 = p;
        }
    }
    std::printf("%s\n", t.render().c_str());

    // The paper's multi-user load: four different LFKs time-sharing
    // the banks — memory-saturated LFK1, FP-bound LFK7, and the
    // scalar-dominated LFK5/LFK11, whose sparse access streams mask
    // most of the port pressure. This heterogeneous fleet lands near
    // the paper's ~20% figure where the saturated all-LFK1 fleet
    // cannot (and an all-vector mix thrashes far above it).
    MixedFleet mixed = measureMixed({1, 7, 5, 11}, cfg);
    std::printf("mixed fleet (LFK");
    for (size_t i = 0; i < mixed.ids.size(); ++i)
        std::printf("%s%d", i ? "," : " ", mixed.ids[i]);
    std::printf("): mean degradation %+.1f%% (band %.0f-%.0f%%), "
                "%llu collisions\n\n",
                100.0 * mixed.degradation,
                100.0 * kMixedDegradationLow,
                100.0 * kMixedDegradationHigh,
                static_cast<unsigned long long>(mixed.collisions));

    // Strip-mining: one LFK1 split across the four CPUs — the other
    // use of a multi-CPU machine. Perfect splitting would finish in
    // solo/4; shared banks and the fixed vector ramp keep it above.
    lfk::MpWorkload strip =
        lfk::buildMpWorkload(kKernel, lfk::MpMix::Strip, cfg.cpus);
    sim::mp::CoupledResult sres =
        sim::mp::runCoupled(strip.jobs, cfg, {});
    double strip_speedup = solo / sres.makespanCycles;
    std::printf("strip: %s over %d CPUs, makespan %.0f cycles, "
                "speedup %.2fx of ideal %dx\n\n",
                k.name.c_str(), cfg.cpus, sres.makespanCycles,
                strip_speedup, cfg.cpus);

    std::printf("independent 4-CPU: %.1f ns/access (band %.0f-%.0f), "
                "degradation %.1f%%\n",
                indep4.perAccessNs, kBandLowNs, kBandHighNs,
                100.0 * indep4.degradation);
    std::printf("lock-step   4-CPU: %.1f ns/access, degradation "
                "%.1f%% (at most %.0f%%)\n",
                lock4.perAccessNs, 100.0 * lock4.degradation,
                100.0 * kLockStepDegradationHigh);

    bool ok = true;
    if (indep4.perAccessNs < kBandLowNs ||
        indep4.perAccessNs > kBandHighNs) {
        std::printf("ERROR: independent per-access time outside the "
                    "paper's 56-64 ns band\n");
        ok = false;
    }
    if (mixed.degradation < kMixedDegradationLow ||
        mixed.degradation > kMixedDegradationHigh) {
        std::printf("ERROR: mixed-fleet degradation outside the "
                    "~20%% band\n");
        ok = false;
    }
    if (lock4.degradation <= 0.0 ||
        lock4.degradation > kLockStepDegradationHigh) {
        std::printf("ERROR: lock-step degradation outside "
                    "(0, %.0f%%]\n",
                    100.0 * kLockStepDegradationHigh);
        ok = false;
    }
    if (lock4.degradation >= indep4.degradation) {
        std::printf("ERROR: lock step should contend less than "
                    "independent\n");
        ok = false;
    }
    if (strip_speedup <= 1.0) {
        std::printf("ERROR: strip-mining across CPUs failed to beat "
                    "one CPU\n");
        ok = false;
    }

    if (!json_path.empty() &&
        !writeJson(json_path, indep4, lock4, mixed, strip_speedup)) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    return ok ? 0 : 1;
}
