# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/chime_test[1]_include.cmake")
include("/root/repo/build/tests/macs_bound_test[1]_include.cmake")
include("/root/repo/build/tests/ax_test[1]_include.cmake")
include("/root/repo/build/tests/workload_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/lfk_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/calib_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/paper_results_test[1]_include.cmake")
include("/root/repo/build/tests/scalar_mode_test[1]_include.cmake")
include("/root/repo/build/tests/macsd_test[1]_include.cmake")
include("/root/repo/build/tests/multi_cpu_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_differential_test[1]_include.cmake")
include("/root/repo/build/tests/bank_model_test[1]_include.cmake")
include("/root/repo/build/tests/report_md_test[1]_include.cmake")
include("/root/repo/build/tests/scalar_cache_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
