/**
 * @file
 * Per-connection state machine of the event-driven server core
 * (docs/SERVER.md): READ_HEADERS → READ_BODY → COMPUTE → WRITE →
 * keep-alive reset, with every transition driven by explicit byte
 * availability instead of blocking I/O.
 *
 * The machine is TRANSPORT-FREE: all I/O goes through the ByteIo
 * interface, whose production implementation (event_loop.cc) wraps a
 * non-blocking socket and whose test implementation
 * (tests/server_loop_test.cc) replays a scripted byte-feed — partial
 * reads, torn chunk boundaries, EAGAIN storms, short writes — so the
 * state machine is as deterministically testable as the parser
 * beneath it. The event-loop shard owns the policy (deadlines, fault
 * sites, metrics, compute dispatch); Connection owns only the
 * mechanics of one HTTP/1.1 connection.
 *
 * Edge-trigger contract: onReadable()/onWritable() drain the
 * transport until it reports WouldBlock, so a single epoll edge is
 * never lost. While a request is in COMPUTE, no further bytes are
 * read (one request in flight per connection, exactly like the
 * thread-per-session core); pipelined bytes already buffered are
 * picked up on the keep-alive reset.
 */

#ifndef MACS_SERVER_CONNECTION_H
#define MACS_SERVER_CONNECTION_H

#include <cstddef>
#include <string>

#include "server/http.h"

namespace macs::server {

/**
 * Non-blocking transport face of one connection. read()/write()
 * return > 0 on progress, kWouldBlock when the operation would
 * block (try again on the next readiness event), kError on a hard
 * transport error; read() additionally returns 0 at EOF.
 */
class ByteIo
{
  public:
    static constexpr int kWouldBlock = -1;
    static constexpr int kError = -2;

    virtual ~ByteIo() = default;
    virtual int read(char *buf, size_t len) = 0;
    virtual int write(const char *buf, size_t len) = 0;
};

class Connection
{
  public:
    enum class State
    {
        ReadHeaders, ///< collecting the request head
        ReadBody,    ///< head parsed; collecting body bytes
        Compute,     ///< full request handed off; reads suspended
        Write,       ///< response queued; flushing
        Closed,
    };

    /** Outcome of one onReadable() drain. */
    enum class ReadEvent
    {
        NeedMore,     ///< no full request yet (WouldBlock reached)
        RequestReady, ///< state()==Compute; takeRequest() is valid
        ParseError,   ///< answer errorStatus()/errorDetail() and close
        PeerClosed,   ///< clean EOF between requests: close quietly
        TornRequest,  ///< EOF mid-message: close without a response
        IoError,      ///< transport error: close
    };

    /** Outcome of one onWritable() flush. */
    enum class WriteEvent
    {
        Blocked,  ///< bytes remain; wait for write readiness
        KeepAlive,///< flushed; reset done — re-run onReadable()
        Closing,  ///< flushed; Connection: close — tear down
        IoError,  ///< transport error: close
    };

    explicit Connection(RequestParser::Limits limits)
        : limits_(limits), parser_(limits)
    {
    }

    State state() const;

    /**
     * Drain @p io until a full request, an error, or WouldBlock.
     * Re-entrant after a keep-alive reset: buffered pipelined bytes
     * are consumed before the transport is read again. Calling it
     * while COMPUTE is in flight is a no-op (NeedMore).
     */
    ReadEvent onReadable(ByteIo &io);

    /** Move the parsed request out (valid after RequestReady). */
    HttpRequest takeRequest();

    /** Parse-failure status / detail (valid after ParseError). */
    int errorStatus() const { return parser_.errorStatus(); }
    const std::string &errorDetail() const
    {
        return parser_.errorDetail();
    }

    /**
     * Serialize @p response and enter WRITE. @p keep_alive chooses
     * the post-flush transition (KeepAlive reset vs Closing). Legal
     * from Compute (the normal path) and from the read states (408 /
     * parse-error replies, which are always keep_alive=false).
     */
    void queueResponse(const HttpResponse &response, bool keep_alive);

    /**
     * Flush pending output until done or WouldBlock. On completion
     * of a keep-alive response the machine resets to READ_HEADERS
     * (the caller should immediately re-run onReadable(): a
     * pipelined request may already be buffered).
     */
    WriteEvent onWritable(ByteIo &io);

    /** Unflushed response bytes (write-backpressure tracking). */
    size_t pendingOutput() const
    {
        return out_.size() - outOff_;
    }

    /** True when bytes of a partially received message exist. */
    bool midRequest() const { return !parser_.idle(); }

    void close() { closed_ = true; }

  private:
    RequestParser::Limits limits_;
    RequestParser parser_;
    HttpRequest request_;     ///< valid while computing_
    bool computing_ = false;  ///< request taken, response not queued
    std::string out_;         ///< serialized response being flushed
    size_t outOff_ = 0;
    bool keepAliveAfterWrite_ = false;
    bool closed_ = false;
};

const char *connStateName(Connection::State state);

} // namespace macs::server

#endif // MACS_SERVER_CONNECTION_H
