/**
 * @file
 * Bank-accurate memory model tests, including the differential check
 * that the closed-form stride rate (MemoryPort::strideRate) matches
 * the ground-truth per-bank simulation across bank counts, strides,
 * and alignments.
 */

#include <gtest/gtest.h>

#include "machine/machine_config.h"
#include "sim/bank_model.h"
#include "sim/memory_port.h"
#include "support/logging.h"

namespace macs::sim {
namespace {

machine::MemoryConfig
memory(int banks = 32, int busy = 8)
{
    machine::MemoryConfig cfg;
    cfg.banks = banks;
    cfg.bankBusyCycles = busy;
    return cfg;
}

TEST(BankModel, UnitStrideSustainsOnePerCycle)
{
    BankSimResult r = simulateBankStream(memory(), 512, 1);
    EXPECT_NEAR(r.sustainedRate, 1.0, 1e-9);
}

TEST(BankModel, SameBankStrideSustainsBusyTime)
{
    BankSimResult r = simulateBankStream(memory(), 512, 32);
    EXPECT_NEAR(r.sustainedRate, 8.0, 1e-9);
}

TEST(BankModel, BackwardStrideMatchesForward)
{
    BankSimResult f = simulateBankStream(memory(), 512, 2, 0);
    BankSimResult b = simulateBankStream(memory(), 512, -2, 4096);
    EXPECT_NEAR(f.sustainedRate, b.sustainedRate, 1e-9);
}

TEST(BankModel, AlignmentDoesNotChangeSustainedRate)
{
    // The burst-wait issue pattern makes the tail-slope estimate
    // phase-sensitive by a fraction of a percent; alignment must not
    // shift the rate beyond that.
    for (uint64_t start : {0u, 1u, 7u, 13u, 31u}) {
        BankSimResult r = simulateBankStream(memory(), 512, 8, start);
        EXPECT_NEAR(r.sustainedRate, 2.0, 0.05) << "start " << start;
    }
}

TEST(BankModel, TransientIsSmall)
{
    BankSimResult r = simulateBankStream(memory(), 512, 16);
    EXPECT_LT(std::abs(r.transientCycles), 16.0);
}

TEST(BankModel, RejectsEmptyStream)
{
    EXPECT_THROW(simulateBankStream(memory(), 0, 1), PanicError);
}

struct GridCase
{
    int banks;
    int busy;
    int64_t stride;
};

class FormulaVsBankSim : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(FormulaVsBankSim, ClosedFormMatchesGroundTruth)
{
    const GridCase &c = GetParam();
    machine::MemoryConfig cfg = memory(c.banks, c.busy);
    MemoryPort port(cfg);
    double formula = port.strideRate(c.stride);
    BankSimResult sim = simulateBankStream(cfg, 1024, c.stride);
    EXPECT_NEAR(sim.sustainedRate, formula, 0.02)
        << "banks=" << c.banks << " busy=" << c.busy
        << " stride=" << c.stride;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FormulaVsBankSim,
    ::testing::Values(
        GridCase{32, 8, 1}, GridCase{32, 8, 2}, GridCase{32, 8, 3},
        GridCase{32, 8, 4}, GridCase{32, 8, 5}, GridCase{32, 8, 8},
        GridCase{32, 8, 12}, GridCase{32, 8, 16}, GridCase{32, 8, 24},
        GridCase{32, 8, 25}, GridCase{32, 8, 31}, GridCase{32, 8, 32},
        GridCase{32, 8, 33}, GridCase{32, 8, 48}, GridCase{32, 8, 64},
        GridCase{32, 8, -1}, GridCase{32, 8, -16},
        GridCase{16, 8, 2}, GridCase{16, 8, 4}, GridCase{16, 8, 8},
        GridCase{16, 8, 16}, GridCase{64, 8, 16}, GridCase{64, 8, 32},
        GridCase{64, 8, 64}, GridCase{8, 8, 2}, GridCase{8, 8, 4},
        GridCase{8, 8, 8}, GridCase{32, 4, 8}, GridCase{32, 4, 16},
        GridCase{32, 16, 8}, GridCase{32, 16, 4},
        GridCase{24, 8, 9}, GridCase{24, 8, 6}, GridCase{24, 8, 12}),
    [](const auto &info) {
        const GridCase &c = info.param;
        std::string s = "b" + std::to_string(c.banks) + "_t" +
                        std::to_string(c.busy) + "_s";
        s += c.stride < 0 ? "m" + std::to_string(-c.stride)
                          : std::to_string(c.stride);
        return s;
    });

TEST(BankModel, StrideRateTableMatchesClosedFormBitwise)
{
    // The fast simulator tier services every stream from this table
    // instead of calling strideRate per stream — bit-identical rates
    // are a precondition for tier-identical timing, so compare with
    // EXPECT_EQ on doubles, not EXPECT_NEAR.
    for (int banks : {1, 8, 16, 24, 32, 64}) {
        for (int busy : {4, 8, 16}) {
            machine::MemoryConfig cfg = memory(banks, busy);
            MemoryPort port(cfg);
            std::vector<double> table = strideRateTable(cfg);
            ASSERT_EQ(table.size(), static_cast<size_t>(banks));
            for (int64_t s = -2 * banks; s <= 2 * banks + 1; ++s) {
                size_t residue = static_cast<size_t>(
                    std::llabs(s) % banks);
                EXPECT_EQ(table[residue], port.strideRate(s))
                    << "banks=" << banks << " busy=" << busy
                    << " stride=" << s;
            }
        }
    }
}

TEST(BankModel, InterleavedStreamsShareThePort)
{
    machine::MemoryConfig cfg = memory();
    // Two unit-stride streams offset to different banks: 2 accesses
    // per element, sustained 1/cycle -> ~2N cycles.
    double apart = simulateInterleavedStreams(cfg, 256, 1, 0, 1, 1040);
    EXPECT_NEAR(apart / 256.0, 2.0, 0.1);
    // Bank-congruent starts (1024 mod 32 == 0): every pair revisits a
    // busy bank and the pair cost balloons — a conflict the analytic
    // per-stream formula cannot see.
    double congruent =
        simulateInterleavedStreams(cfg, 256, 1, 0, 1, 1024);
    EXPECT_GT(congruent / 256.0, 8.0);
}

TEST(BankModel, InterleavedConflictingStreamsSlowEachOther)
{
    machine::MemoryConfig cfg = memory();
    // Both streams stride 32 on the SAME bank: 16 cycles per pair.
    double same = simulateInterleavedStreams(cfg, 256, 32, 0, 32, 32 * 8);
    // Same strides but offset to different banks: 8 cycles per pair
    // (each stream still self-conflicts).
    double split = simulateInterleavedStreams(cfg, 256, 32, 0, 32, 1);
    EXPECT_GT(same / 256.0, 15.0);
    EXPECT_LT(split / 256.0, 9.0);
}

} // namespace
} // namespace macs::sim
