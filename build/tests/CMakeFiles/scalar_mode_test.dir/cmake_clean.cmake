file(REMOVE_RECURSE
  "CMakeFiles/scalar_mode_test.dir/scalar_mode_test.cc.o"
  "CMakeFiles/scalar_mode_test.dir/scalar_mode_test.cc.o.d"
  "scalar_mode_test"
  "scalar_mode_test.pdb"
  "scalar_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
