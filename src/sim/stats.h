/**
 * @file
 * Aggregate statistics of a simulated run.
 */

#ifndef MACS_SIM_STATS_H
#define MACS_SIM_STATS_H

#include <cstdint>

namespace macs::sim {

/** Counters and cycle totals produced by Simulator::run(). */
struct RunStats
{
    double cycles = 0.0;            ///< total run time in clock cycles
    uint64_t instructions = 0;      ///< dynamic instruction count
    uint64_t vectorInstructions = 0;
    uint64_t scalarInstructions = 0;
    uint64_t branchesTaken = 0;
    uint64_t vectorElements = 0;    ///< elements processed by the VP
    uint64_t flops = 0;             ///< vector FP element operations
    uint64_t memoryElements = 0;    ///< vector elements loaded/stored
    uint64_t scalarMemAccesses = 0;
    uint64_t scalarCacheHits = 0;
    uint64_t scalarCacheMisses = 0;
    double refreshStallCycles = 0.0;
    /**
     * Extra cycles non-unit strides cost against the unit-stride
     * memory rate (bank-conflict slowdown, contention excluded).
     */
    double bankConflictCycles = 0.0;
    double loadStorePipeBusy = 0.0; ///< cycles elements streamed per pipe
    double addPipeBusy = 0.0;
    double multiplyPipeBusy = 0.0;
    /**
     * Cycles the CPU<->memory port was occupied: exact sum of every
     * stream's [enter, streamEnd) span and every scalar access's
     * [start, done) span. Port windows never overlap (the port is
     * serialized through its free time), so this is <= cycles by
     * construction — the multi-CPU drivers divide by cycles to get a
     * port utilization that cannot saturate spuriously.
     */
    double portBusyCycles = 0.0;

    /** Pipe-busy cycles by pipe index (0 ld/st, 1 add, 2 multiply). */
    double
    pipeBusy(int pipe) const
    {
        return pipe == 0   ? loadStorePipeBusy
               : pipe == 1 ? addPipeBusy
                           : multiplyPipeBusy;
    }

    /** Cycles per floating point operation (0 when no flops ran). */
    double
    cpf() const
    {
        return flops ? cycles / static_cast<double>(flops) : 0.0;
    }

    /** MFLOPS at @p clock_mhz. */
    double
    mflops(double clock_mhz) const
    {
        double c = cpf();
        return c > 0.0 ? clock_mhz / c : 0.0;
    }
};

} // namespace macs::sim

#endif // MACS_SIM_STATS_H
