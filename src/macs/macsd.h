/**
 * @file
 * The MACS-D bound: the paper's proposed "fifth degree of freedom, D,
 * after M, A, C and S to bind the allocation (decomposition) of the
 * data structures in memory" (section 3.1), which the paper defines
 * but does not evaluate.
 *
 * MA/MAC/MACS assume every memory stream sustains one element per
 * clock. With the data decomposition bound, each strided access is
 * charged the rate the interleaved memory can actually sustain for its
 * stride (see MemoryPort::strideRate): a stride sharing a large factor
 * with the bank count revisits a busy bank and slows to
 * bankBusy / distinctBanks cycles per element. The degraded rate flows
 * through the same slow-pipe overhang machinery as reductions and
 * divides, so partially masked conflicts are only partially charged.
 *
 * Strides are bound by constant propagation over the program preamble:
 * a strided access whose stride register holds a known, loop-invariant
 * constant gets that stride; unresolvable strides conservatively keep
 * rate 1 (the MACS assumption) and are reported as unbound.
 */

#ifndef MACS_MACS_MACSD_H
#define MACS_MACS_MACSD_H

#include <map>

#include "isa/program.h"
#include "machine/machine_config.h"
#include "macs/macs_bound.h"

namespace macs::model {

/** Stride binding for a program's inner loop. */
struct StrideBinding
{
    /** body-relative instruction index -> stride in words. */
    std::map<size_t, int64_t> strides;
    /** body-relative indices of strided ops whose stride register
     *  could not be resolved to a loop-invariant constant. */
    std::vector<size_t> unbound;
};

/**
 * Resolve the stride (in words) of every vector memory access in the
 * program's inner loop by propagating register constants through the
 * preamble. Unit-stride operations map to 1.
 */
StrideBinding bindStrides(const isa::Program &prog);

/** Result of a MACS-D evaluation. */
struct MacsDResult
{
    MacsResult macs;       ///< bound with decomposition-degraded rates
    StrideBinding binding; ///< the strides that were bound
    /** Worst sustained cycles/element over the loop's memory ops. */
    double worstMemoryRate = 1.0;
};

/**
 * Evaluate the MACS-D bound of @p prog's inner loop on @p config.
 * Equals plain MACS when every stream runs conflict-free.
 */
MacsDResult evaluateMacsD(const isa::Program &prog,
                          const machine::MachineConfig &config,
                          int vector_length = isa::kMaxVectorLength);

} // namespace macs::model

#endif // MACS_MACS_MACSD_H
