#include "sim/multi_cpu.h"

#include <algorithm>
#include <cmath>

#include "support/logging.h"

namespace macs::sim {

namespace {

/** Per-process coupling strength (see header). */
double
alphaFor(WorkloadMix mix)
{
    switch (mix) {
      case WorkloadMix::Independent:
        return 0.15;
      case WorkloadMix::LockStep:
        return 0.05;
    }
    panic("unreachable workload mix");
}

RunStats
runOnce(const CpuJob &job, const machine::MachineConfig &config,
        double factor)
{
    SimOptions opt;
    opt.memoryContentionFactor = factor;
    Simulator sim(config, *job.program, opt);
    if (job.setup)
        job.setup(sim);
    return sim.run();
}

/**
 * Fraction of the run during which the memory port streamed. Uses the
 * simulator's exact port-occupancy accounting (RunStats::portBusyCycles
 * is a sum of disjoint port spans, <= cycles by construction); the
 * clamp only guards against a degenerate zero-cycle run.
 */
double
portUtilization(const RunStats &st)
{
    if (st.cycles <= 0.0)
        return 0.0;
    return std::min(1.0, st.portBusyCycles / st.cycles);
}

} // namespace

MultiCpuResult
runMultiCpu(const std::vector<CpuJob> &jobs,
            const machine::MachineConfig &config,
            const MultiCpuOptions &options)
{
    MACS_ASSERT(!jobs.empty(), "multi-CPU run needs at least one job");
    MACS_ASSERT(static_cast<int>(jobs.size()) <= config.cpus,
                "the machine has ", config.cpus, " CPUs; got ",
                jobs.size(), " jobs");
    for (const auto &j : jobs)
        MACS_ASSERT(j.program != nullptr, "job without a program");

    const double alpha = alphaFor(options.mix);
    const size_t n = jobs.size();

    MultiCpuResult res;
    res.factor.assign(n, 1.0);
    res.utilization.assign(n, 0.0);

    for (int iter = 0; iter < options.maxIterations; ++iter) {
        ++res.iterations;
        res.stats.clear();
        for (size_t i = 0; i < n; ++i)
            res.stats.push_back(runOnce(jobs[i], config, res.factor[i]));
        for (size_t i = 0; i < n; ++i)
            res.utilization[i] = portUtilization(res.stats[i]);

        double worst_delta = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double others = 0.0;
            for (size_t j = 0; j < n; ++j)
                if (j != i)
                    others += res.utilization[j];
            double next = 1.0 + alpha * others;
            worst_delta =
                std::max(worst_delta, std::abs(next - res.factor[i]));
            res.factor[i] = next;
        }
        if (worst_delta < options.tolerance) {
            res.converged = true;
            break;
        }
    }
    if (!res.converged)
        warn("multi-CPU contention fixed point did not converge in ",
             options.maxIterations, " iterations");
    return res;
}

} // namespace macs::sim
