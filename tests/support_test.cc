/**
 * @file
 * Unit tests for the support library: strings, tables, math helpers,
 * and the logging/assertion machinery.
 */

#include <gtest/gtest.h>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/strings.h"
#include "support/table.h"

namespace macs {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, TrimEmptyAndAllWhitespace)
{
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Strings, TrimNoWhitespaceIsIdentity)
{
    EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, SplitBasic)
{
    auto v = split("a, b ,c", ',');
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");
}

TEST(Strings, SplitDropsEmptyFieldsByDefault)
{
    auto v = split("a,,b,", ',');
    ASSERT_EQ(v.size(), 2u);
}

TEST(Strings, SplitKeepEmpty)
{
    auto v = split("a,,b", ',', true, true);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[1], "");
}

TEST(Strings, SplitWhitespaceCollapsesRuns)
{
    auto v = splitWhitespace("  ld.l   x, v0\t y ");
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "ld.l");
    EXPECT_EQ(v[1], "x,");
    EXPECT_EQ(v[3], "y");
}

TEST(Strings, SplitWhitespaceEmpty)
{
    EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("MixedCASE123"), "mixedcase123");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("ld.l x", "ld"));
    EXPECT_FALSE(startsWith("ld", "ld.l"));
}

TEST(Strings, FormatProducesPrintfOutput)
{
    EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
}

TEST(Strings, FormatEmpty)
{
    EXPECT_EQ(format("%s", ""), "");
}

TEST(Strings, ParseIntDecimalAndHex)
{
    long v = 0;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt("-17", v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseInt("0x10", v));
    EXPECT_EQ(v, 16);
}

TEST(Strings, ParseIntRejectsGarbage)
{
    long v = 0;
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("12x", v));
    EXPECT_FALSE(parseInt("x12", v));
}

TEST(Strings, ParseIntTrimsWhitespace)
{
    long v = 0;
    EXPECT_TRUE(parseInt("  8 ", v));
    EXPECT_EQ(v, 8);
}

TEST(Strings, ParseDouble)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("1.5e2", v));
    EXPECT_DOUBLE_EQ(v, 150.0);
    EXPECT_FALSE(parseDouble("1.5.2", v));
    EXPECT_FALSE(parseDouble("", v));
}

// ---------------------------------------------------------------- table

TEST(Table, RenderContainsHeaderAndCells)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Table, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 3), "1.235");
    EXPECT_EQ(Table::num(1.0, 1), "1.0");
    EXPECT_EQ(Table::num(42L), "42");
}

TEST(Table, CsvQuotesOnlyWhenNeeded)
{
    Table t({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"quote\"inside", "x"});
    std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("plain"), std::string::npos);
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, SeparatorRendersRule)
{
    Table t({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // Header rule plus the explicit separator.
    size_t first = out.find("---");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(out.find("---", first + 3), std::string::npos);
}

TEST(Table, EmptyHeaderPanics)
{
    EXPECT_THROW(Table t({}), PanicError);
}

TEST(Table, CountersReflectContent)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

// ---------------------------------------------------------------- math

TEST(Math, MeanBasic)
{
    std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

TEST(Math, MeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Math, HarmonicMeanBasic)
{
    std::vector<double> xs = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(harmonicMean(xs), 1.0);
    std::vector<double> ys = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(harmonicMean(ys), 1.5);
}

TEST(Math, HarmonicMeanRejectsNonPositive)
{
    std::vector<double> xs = {1.0, 0.0};
    EXPECT_THROW(harmonicMean(xs), PanicError);
    EXPECT_THROW(harmonicMean({}), PanicError);
}

TEST(Math, FitLineRecoversExactLine)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {3, 5, 7, 9}; // y = 2x + 1
    LinearFit f = fitLine(xs, ys);
    EXPECT_NEAR(f.slope, 2.0, 1e-12);
    EXPECT_NEAR(f.intercept, 1.0, 1e-12);
    EXPECT_NEAR(f.rss, 0.0, 1e-12);
}

TEST(Math, FitLineReportsResiduals)
{
    std::vector<double> xs = {0, 1, 2};
    std::vector<double> ys = {0, 1, 0};
    LinearFit f = fitLine(xs, ys);
    EXPECT_GT(f.rss, 0.0);
}

TEST(Math, FitLineRejectsDegenerateInput)
{
    std::vector<double> xs = {1, 1};
    std::vector<double> ys = {2, 3};
    EXPECT_THROW(fitLine(xs, ys), PanicError);
    std::vector<double> one = {1};
    EXPECT_THROW(fitLine(one, one), PanicError);
}

TEST(Math, Gcd)
{
    EXPECT_EQ(gcd(32, 8), 8u);
    EXPECT_EQ(gcd(32, 5), 1u);
    EXPECT_EQ(gcd(0, 7), 7u);
    EXPECT_EQ(gcd(7, 0), 7u);
    EXPECT_EQ(gcd(48, 36), 12u);
}

TEST(Math, RoundTo)
{
    EXPECT_DOUBLE_EQ(roundTo(1.2345, 2), 1.23);
    EXPECT_DOUBLE_EQ(roundTo(1.235, 2), 1.24);
    EXPECT_DOUBLE_EQ(roundTo(-1.235, 2), -1.24);
}

// ---------------------------------------------------------------- logging

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken ", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error ", "detail"), FatalError);
}

TEST(Logging, PanicMessageContainsPieces)
{
    try {
        panic("part1 ", 7, " part2");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("part1 7 part2"), std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    MACS_ASSERT(1 + 1 == 2, "should not fire");
    SUCCEED();
}

TEST(Logging, AssertThrowsOnFalse)
{
    EXPECT_THROW(MACS_ASSERT(false, "expected"), PanicError);
}

TEST(Logging, VerboseToggleSuppressesWarn)
{
    setVerbose(false);
    warn("this should not print");
    inform("nor this");
    setVerbose(true);
    SUCCEED();
}

} // namespace
} // namespace macs
