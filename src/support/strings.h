/**
 * @file
 * Small string utilities shared across the library: trimming, splitting,
 * case folding, and printf-style formatting into std::string.
 */

#ifndef MACS_SUPPORT_STRINGS_H
#define MACS_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace macs {

/** Remove leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split @p s on @p sep, optionally trimming and dropping empty fields. */
std::vector<std::string> split(std::string_view s, char sep,
                               bool trim_fields = true,
                               bool keep_empty = false);

/** Split on arbitrary runs of whitespace. */
std::vector<std::string> splitWhitespace(std::string_view s);

/** Lower-case ASCII copy. */
std::string toLower(std::string_view s);

/** True when @p s starts with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Parse a signed integer with optional 0x prefix.
 * @param s     text to parse (must be fully consumed)
 * @param out   receives the value on success
 * @retval true on success, false on malformed input
 */
bool parseInt(std::string_view s, long &out);

/** Parse a double; @retval true on success. */
bool parseDouble(std::string_view s, double &out);

} // namespace macs

#endif // MACS_SUPPORT_STRINGS_H
