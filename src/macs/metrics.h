/**
 * @file
 * Unit conversions shared by all bound levels (paper equations 2-4):
 * CPL (cycles per inner loop iteration), CPF (cycles per floating point
 * operation, normalized by the *source* flop count), MFLOPS, and the
 * harmonic-mean summary row of Table 4.
 */

#ifndef MACS_MACS_METRICS_H
#define MACS_MACS_METRICS_H

#include <span>

#include "support/logging.h"
#include "support/math_util.h"

namespace macs::model {

/** Convert cycles-per-loop to cycles-per-flop (source flops per
 *  iteration, f_a + f_m of the high-level code). */
inline double
cplToCpf(double cpl, int source_flops)
{
    MACS_ASSERT(source_flops > 0, "CPF needs a positive flop count");
    return cpl / static_cast<double>(source_flops);
}

/** MFLOPS delivered at @p cpf on a @p clock_mhz machine. */
inline double
cpfToMflops(double cpf, double clock_mhz)
{
    MACS_ASSERT(cpf > 0.0, "MFLOPS needs positive CPF");
    return clock_mhz / cpf;
}

/**
 * Harmonic-mean MFLOPS over a set of applications: equation (4),
 * HMEAN(MFLOPS) = clockrate(MHz) / averageCPF.
 */
inline double
hmeanMflops(std::span<const double> cpfs, double clock_mhz)
{
    return clock_mhz / mean(cpfs);
}

} // namespace macs::model

#endif // MACS_MACS_METRICS_H
