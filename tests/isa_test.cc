/**
 * @file
 * Unit tests for the ISA layer: registers, opcodes, instructions,
 * programs, and the assembler, including print/parse round trips.
 */

#include <gtest/gtest.h>

#include "isa/instruction.h"
#include "isa/opcode.h"
#include "isa/parser.h"
#include "isa/program.h"
#include "isa/registers.h"
#include "support/logging.h"

namespace macs::isa {
namespace {

// ---------------------------------------------------------------- registers

TEST(Registers, Constructors)
{
    EXPECT_TRUE(vreg(3).isVector());
    EXPECT_TRUE(sreg(2).isScalar());
    EXPECT_TRUE(areg(5).isAddress());
    EXPECT_FALSE(noreg().valid());
    EXPECT_EQ(vlreg().cls, RegClass::Vl);
}

TEST(Registers, PairMapping)
{
    // {v0,v4}, {v1,v5}, {v2,v6}, {v3,v7}.
    EXPECT_EQ(vreg(0).pair(), 0);
    EXPECT_EQ(vreg(4).pair(), 0);
    EXPECT_EQ(vreg(1).pair(), 1);
    EXPECT_EQ(vreg(5).pair(), 1);
    EXPECT_EQ(vreg(2).pair(), 2);
    EXPECT_EQ(vreg(6).pair(), 2);
    EXPECT_EQ(vreg(3).pair(), 3);
    EXPECT_EQ(vreg(7).pair(), 3);
}

TEST(Registers, ToStringForms)
{
    EXPECT_EQ(toString(vreg(7)), "v7");
    EXPECT_EQ(toString(sreg(0)), "s0");
    EXPECT_EQ(toString(areg(5)), "a5");
    EXPECT_EQ(toString(vlreg()), "VL");
    EXPECT_EQ(toString(noreg()), "-");
}

TEST(Registers, ParseValid)
{
    Reg r;
    EXPECT_TRUE(parseReg("v3", r));
    EXPECT_EQ(r, vreg(3));
    EXPECT_TRUE(parseReg("s7", r));
    EXPECT_EQ(r, sreg(7));
    EXPECT_TRUE(parseReg("a0", r));
    EXPECT_EQ(r, areg(0));
    EXPECT_TRUE(parseReg("VL", r));
    EXPECT_EQ(r.cls, RegClass::Vl);
    EXPECT_TRUE(parseReg("vl", r));
}

TEST(Registers, ParseRejectsOutOfRangeAndGarbage)
{
    Reg r;
    EXPECT_FALSE(parseReg("v8", r));
    EXPECT_FALSE(parseReg("s-1", r));
    EXPECT_FALSE(parseReg("a9", r));
    EXPECT_FALSE(parseReg("x3", r));
    EXPECT_FALSE(parseReg("v", r));
    EXPECT_FALSE(parseReg("", r));
}

TEST(Registers, EqualityIgnoresIndexForNone)
{
    EXPECT_EQ(noreg(), noreg());
    EXPECT_EQ(vlreg(), vlreg());
    EXPECT_NE(vreg(1), vreg(2));
    EXPECT_NE(vreg(1), sreg(1));
}

// ---------------------------------------------------------------- opcodes

struct OpcodeCase
{
    Opcode op;
    const char *mnemonic;
    Pipe pipe;
    bool vector_mem;
    bool vector_fp;
};

class OpcodeInfoTest : public ::testing::TestWithParam<OpcodeCase>
{
};

TEST_P(OpcodeInfoTest, StaticProperties)
{
    const OpcodeCase &c = GetParam();
    const OpcodeInfo &info = opcodeInfo(c.op);
    EXPECT_STREQ(info.mnemonic, c.mnemonic);
    EXPECT_EQ(info.pipe, c.pipe);
    EXPECT_EQ(isVectorMem(c.op), c.vector_mem);
    EXPECT_EQ(isVectorFp(c.op), c.vector_fp);
    EXPECT_EQ(isVectorOp(c.op), c.pipe != Pipe::None);
    EXPECT_EQ(opcodeFromMnemonic(c.mnemonic), c.op);
}

INSTANTIATE_TEST_SUITE_P(
    AllVector, OpcodeInfoTest,
    ::testing::Values(
        OpcodeCase{Opcode::VLd, "ld.l", Pipe::LoadStore, true, false},
        OpcodeCase{Opcode::VSt, "st.l", Pipe::LoadStore, true, false},
        OpcodeCase{Opcode::VLdS, "lds.l", Pipe::LoadStore, true, false},
        OpcodeCase{Opcode::VStS, "sts.l", Pipe::LoadStore, true, false},
        OpcodeCase{Opcode::VAdd, "add.d", Pipe::Add, false, true},
        OpcodeCase{Opcode::VSub, "sub.d", Pipe::Add, false, true},
        OpcodeCase{Opcode::VNeg, "neg.d", Pipe::Add, false, true},
        OpcodeCase{Opcode::VSum, "sum.d", Pipe::Add, false, true},
        OpcodeCase{Opcode::VMul, "mul.d", Pipe::Multiply, false, true},
        OpcodeCase{Opcode::VDiv, "div.d", Pipe::Multiply, false, true}));

INSTANTIATE_TEST_SUITE_P(
    AllScalar, OpcodeInfoTest,
    ::testing::Values(
        OpcodeCase{Opcode::SLd, "ld.w", Pipe::None, false, false},
        OpcodeCase{Opcode::SSt, "st.w", Pipe::None, false, false},
        OpcodeCase{Opcode::SAdd, "add.w", Pipe::None, false, false},
        OpcodeCase{Opcode::SSub, "sub.w", Pipe::None, false, false},
        OpcodeCase{Opcode::SMul, "mul.w", Pipe::None, false, false},
        OpcodeCase{Opcode::SMov, "mov", Pipe::None, false, false},
        OpcodeCase{Opcode::SLt, "lt.w", Pipe::None, false, false},
        OpcodeCase{Opcode::SLe, "le.w", Pipe::None, false, false},
        OpcodeCase{Opcode::BrT, "jbrs.t", Pipe::None, false, false},
        OpcodeCase{Opcode::BrF, "jbrs.f", Pipe::None, false, false},
        OpcodeCase{Opcode::Jmp, "jbra", Pipe::None, false, false},
        OpcodeCase{Opcode::Nop, "nop", Pipe::None, false, false}));

TEST(Opcode, ScalarMemClassification)
{
    EXPECT_TRUE(isScalarMem(Opcode::SLd));
    EXPECT_TRUE(isScalarMem(Opcode::SSt));
    EXPECT_FALSE(isScalarMem(Opcode::VLd));
    EXPECT_FALSE(isScalarMem(Opcode::SAdd));
}

TEST(Opcode, ControlClassification)
{
    EXPECT_TRUE(isControl(Opcode::BrT));
    EXPECT_TRUE(isControl(Opcode::BrF));
    EXPECT_TRUE(isControl(Opcode::Jmp));
    EXPECT_FALSE(isControl(Opcode::SMov));
}

TEST(Opcode, UnknownMnemonicIsNullopt)
{
    EXPECT_FALSE(opcodeFromMnemonic("frobnicate").has_value());
}

// ---------------------------------------------------------------- instructions

TEST(Instruction, VectorLoadUsesAndDefs)
{
    Instruction in = makeVLoad(MemRef{"x", 0, areg(5)}, vreg(2));
    EXPECT_TRUE(in.vectorReads().empty());
    ASSERT_EQ(in.vectorWrites().size(), 1u);
    EXPECT_EQ(in.vectorWrites()[0], vreg(2));
    // The base address register is a scalar-side read.
    auto sreads = in.scalarReads();
    ASSERT_EQ(sreads.size(), 1u);
    EXPECT_EQ(sreads[0], areg(5));
}

TEST(Instruction, BinaryReadsBothVectorSources)
{
    Instruction in = makeVBinary(Opcode::VAdd, vreg(1), vreg(2), vreg(3));
    auto reads = in.vectorReads();
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(in.vectorWrites()[0], vreg(3));
}

TEST(Instruction, BroadcastSourceIsScalarRead)
{
    Instruction in = makeVBinary(Opcode::VMul, sreg(1), vreg(2), vreg(3));
    EXPECT_EQ(in.vectorReads().size(), 1u);
    ASSERT_EQ(in.scalarReads().size(), 1u);
    EXPECT_EQ(in.scalarReads()[0], sreg(1));
}

TEST(Instruction, SumWritesScalar)
{
    Instruction in = makeVSum(vreg(0), sreg(4));
    EXPECT_EQ(in.scalarWrite(), sreg(4));
    EXPECT_TRUE(in.isVectorFloat());
}

TEST(Instruction, BuilderAssertsOnBadOperands)
{
    EXPECT_THROW(makeVLoad(MemRef{}, sreg(0)), PanicError);
    EXPECT_THROW(makeVBinary(Opcode::VAdd, sreg(0), sreg(1), vreg(0)),
                 PanicError);
    EXPECT_THROW(makeVBinary(Opcode::SAdd, vreg(0), vreg(1), vreg(2)),
                 PanicError);
    EXPECT_THROW(makeVSum(vreg(0), vreg(1)), PanicError);
    EXPECT_THROW(makeSLoad(MemRef{"x", 0, noreg()}, vreg(0)), PanicError);
    EXPECT_THROW(makeBranch(Opcode::SMov, "L"), PanicError);
}

TEST(Instruction, MemRefToString)
{
    EXPECT_EQ((MemRef{"x", 80, areg(5)}).toString(), "x+80(a5)");
    EXPECT_EQ((MemRef{"x", -8, areg(1)}).toString(), "x-8(a1)");
    EXPECT_EQ((MemRef{"x", 0, noreg()}).toString(), "x");
    EXPECT_EQ((MemRef{"", 16, areg(2)}).toString(), "16(a2)");
}

struct RoundTripCase
{
    const char *text;
};

class InstructionRoundTrip : public ::testing::TestWithParam<RoundTripCase>
{
};

TEST_P(InstructionRoundTrip, PrintParsePrintIsStable)
{
    std::string text = std::string(".comm x,16\n.comm y,16\n") +
                       GetParam().text + "\n";
    Program p1 = assemble(text);
    std::string printed = p1.toString();
    Program p2 = assemble(printed);
    EXPECT_EQ(printed, p2.toString());
    ASSERT_EQ(p1.size(), p2.size());
    for (size_t i = 0; i < p1.size(); ++i)
        EXPECT_EQ(p1.instrs()[i].toString(), p2.instrs()[i].toString());
}

INSTANTIATE_TEST_SUITE_P(
    Forms, InstructionRoundTrip,
    ::testing::Values(
        RoundTripCase{"ld.l x+80(a5),v0"},
        RoundTripCase{"st.l v3,y(a2)"},
        RoundTripCase{"lds.l x(a1),s1,v2"},
        RoundTripCase{"sts.l v2,s1,y+8(a1)"},
        RoundTripCase{"add.d v0,v1,v2"},
        RoundTripCase{"sub.d v0,s1,v2"},
        RoundTripCase{"mul.d s3,v1,v2"},
        RoundTripCase{"div.d v0,v1,v2"},
        RoundTripCase{"neg.d v0,v1"},
        RoundTripCase{"sum.d v0,s2"},
        RoundTripCase{"ld.w x,s0"},
        RoundTripCase{"st.w s1,y+8"},
        RoundTripCase{"add.w #1024,a5"},
        RoundTripCase{"sub.w #128,s0"},
        RoundTripCase{"mul.w s1,s2,s3"},
        RoundTripCase{"mov #990,s0"},
        RoundTripCase{"mov s0,VL"},
        RoundTripCase{"lt.w #0,s0"},
        RoundTripCase{"le.w s1,s2"},
        RoundTripCase{"nop"}));

// ---------------------------------------------------------------- program

TEST(Program, LabelsAttachToNextInstruction)
{
    Program p;
    p.append(makeMovImm(1, sreg(0)));
    p.label("L1");
    p.append(makeMovImm(2, sreg(1)));
    EXPECT_EQ(p.labelIndex("L1"), 1u);
    EXPECT_TRUE(p.hasLabel("L1"));
    EXPECT_FALSE(p.hasLabel("L2"));
}

TEST(Program, DuplicateLabelIsFatal)
{
    Program p;
    p.label("L");
    EXPECT_THROW(p.label("L"), FatalError);
}

TEST(Program, DuplicateDataSymbolIsFatal)
{
    Program p;
    p.defineData("x", 8);
    EXPECT_THROW(p.defineData("x", 16), FatalError);
}

TEST(Program, UnknownLabelIndexIsFatal)
{
    Program p;
    EXPECT_THROW(p.labelIndex("nope"), FatalError);
}

TEST(Program, InnerLoopFindsBackwardBranchBody)
{
    Program p = assemble(R"(
.comm x,256
    mov #128,s0
L1: mov s0,VL
    ld.l x(a5),v0
    sub #128,s0
    lt.w #0,s0
    jbrs.t L1
)");
    auto body = p.innerLoop();
    EXPECT_EQ(body.size(), 5u);
    EXPECT_EQ(body.front().op, Opcode::SMov);
    EXPECT_EQ(body.back().op, Opcode::BrT);
}

TEST(Program, InnerLoopFatalWithoutBackwardBranch)
{
    Program p;
    p.append(makeMovImm(1, sreg(0)));
    EXPECT_THROW(p.innerLoop(), FatalError);
}

TEST(Program, ValidateCatchesUndefinedBranchTarget)
{
    Program p;
    p.append(makeBranch(Opcode::Jmp, "missing"));
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ValidateCatchesUndefinedDataSymbol)
{
    Program p;
    p.append(makeVLoad(MemRef{"ghost", 0, areg(5)}, vreg(0)));
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ValidateAcceptsRegisterOnlyMemRef)
{
    Program p;
    p.append(makeVLoad(MemRef{"", 64, areg(5)}, vreg(0)));
    p.validate();
    SUCCEED();
}

TEST(Program, ValidateRejectsSymbolFreeBaseFreeMemRef)
{
    Program p;
    Instruction in = makeSLoad(MemRef{"", 0, areg(1)}, sreg(0));
    in.mem.base = noreg();
    p.append(in);
    EXPECT_THROW(p.validate(), FatalError);
}

// ---------------------------------------------------------------- parser

TEST(Parser, CommentsAndBlankLinesIgnored)
{
    Program p = assemble("; pure comment\n\n   \nnop ; trailing\n");
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p.instrs()[0].comment, "trailing");
}

TEST(Parser, PaperAliasesAccepted)
{
    Program p = assemble(R"(
.comm x,16
    add #1024,a5
    sub #128,s0
    lt #0,s0
)");
    EXPECT_EQ(p.instrs()[0].op, Opcode::SAdd);
    EXPECT_EQ(p.instrs()[1].op, Opcode::SSub);
    EXPECT_EQ(p.instrs()[2].op, Opcode::SLt);
}

TEST(Parser, LdWithScalarDestinationIsScalarLoad)
{
    Program p = assemble(".comm x,8\n ld.l x,s3\n st.l s3,x\n");
    EXPECT_EQ(p.instrs()[0].op, Opcode::SLd);
    EXPECT_EQ(p.instrs()[1].op, Opcode::SSt);
}

TEST(Parser, UnknownMnemonicIsFatal)
{
    EXPECT_THROW(assemble("bogus v0,v1\n"), FatalError);
}

TEST(Parser, WrongOperandCountIsFatal)
{
    EXPECT_THROW(assemble("add.d v0,v1\n"), FatalError);
}

TEST(Parser, BadRegisterIsFatal)
{
    EXPECT_THROW(assemble("add.d v0,v1,v9\n"), FatalError);
}

TEST(Parser, BadDirectiveIsFatal)
{
    EXPECT_THROW(assemble(".bogus x,1\n"), FatalError);
}

TEST(Parser, CommWithoutSizeIsFatal)
{
    EXPECT_THROW(assemble(".comm x\n"), FatalError);
}

TEST(Parser, LabelOnSameLineAsInstruction)
{
    Program p = assemble("L7: nop\n jbra L7\n");
    EXPECT_EQ(p.labelIndex("L7"), 0u);
    EXPECT_EQ(p.size(), 2u);
}

TEST(Parser, MemRefVariants)
{
    MemRef m;
    EXPECT_TRUE(parseMemRef("x+80(a5)", m));
    EXPECT_EQ(m.symbol, "x");
    EXPECT_EQ(m.offset, 80);
    EXPECT_EQ(m.base, areg(5));

    EXPECT_TRUE(parseMemRef("x-8(a1)", m));
    EXPECT_EQ(m.offset, -8);

    EXPECT_TRUE(parseMemRef("x", m));
    EXPECT_EQ(m.base, noreg());

    EXPECT_TRUE(parseMemRef("64(a2)", m));
    EXPECT_TRUE(m.symbol.empty());
    EXPECT_EQ(m.offset, 64);

    EXPECT_TRUE(parseMemRef("(a3)", m));
    EXPECT_EQ(m.offset, 0);

    EXPECT_FALSE(parseMemRef("64", m));      // immediate, not memory
    EXPECT_FALSE(parseMemRef("x(v1)", m));   // not an address register
    EXPECT_FALSE(parseMemRef("", m));
}

TEST(Parser, PaperLfk1ListingAssembles)
{
    // The verbatim section 3.5 listing shape must parse.
    Program p = assemble(R"(
.comm x,1024
.comm y,1024
.comm zx,1024
L7:
    mov s0,VL
    ld.l zx+80(a5),v0
    mul.d v0,s1,v1
    ld.l zx+88(a5),v2
    mul.d v2,s3,v0
    add.d v1,v0,v3
    ld.l y(a5),v1
    mul.d v1,v3,v2
    add.d v2,s7,v0
    st.l v0,x(a5)
    add #1024,a5
    sub #128,s0
    lt.w #0,s0
    jbrs.t L7
)");
    EXPECT_EQ(p.size(), 14u);
    auto body = p.innerLoop();
    EXPECT_EQ(body.size(), 14u);
}

} // namespace
} // namespace macs::isa
