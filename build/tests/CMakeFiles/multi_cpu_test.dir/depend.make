# Empty dependencies file for multi_cpu_test.
# This may be replaced when dependencies are built.
