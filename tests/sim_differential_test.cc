/**
 * @file
 * Two-tier simulator differential tests (docs/SIMULATOR.md): the fast
 * chime-batched tier must be observationally indistinguishable from
 * the reference interpreter. "Indistinguishable" is bitwise, not
 * approximate — every RunStats field, every Timeline event, every
 * StallProfile entry, the final memory image, and the rendered
 * batch/sweep report bytes must match exactly for:
 *
 *  - every LFK kernel x every shipped machines/*.machine config
 *    (plus the builtin C-240);
 *  - every tests/corpus/*.loop regression seed, in both scalar and
 *    vector compilation modes, on every machine config;
 *  - batch and sweep reports at 1/4/16 workers.
 *
 * The tiers must also never alias one memo-cache entry (a hit across
 * tiers would make differential runs vacuous), which is pinned on
 * both the fingerprint and the engine-level cache keys.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "machine/machine_file.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "pipeline/sweep.h"
#include "sim/simulator.h"
#include "support/logging.h"

#ifndef MACS_MACHINE_DIR
#error "MACS_MACHINE_DIR must be defined by the build"
#endif
#ifndef MACS_CORPUS_DIR
#error "MACS_CORPUS_DIR must be defined by the build"
#endif

namespace macs {
namespace {

uint64_t
bits(double d)
{
    return std::bit_cast<uint64_t>(d);
}

/** Builtin C-240 plus every shipped .machine file, name-tagged. */
std::vector<std::pair<std::string, machine::MachineConfig>>
allMachineConfigs()
{
    std::vector<std::pair<std::string, machine::MachineConfig>> out;
    out.emplace_back("builtin-c240",
                     machine::MachineConfig::convexC240());
    Diagnostics diags;
    for (const std::string &path :
         machine::listMachineFiles(MACS_MACHINE_DIR, diags)) {
        machine::MachineFile mf;
        Diagnostics d;
        if (!machine::loadMachineFile(path, mf, d))
            ADD_FAILURE() << "cannot load " << path << "\n"
                          << d.render();
        else
            out.emplace_back(mf.name, mf.config);
    }
    EXPECT_GE(out.size(), 2u)
        << "no .machine files under " << MACS_MACHINE_DIR;
    return out;
}

/** Everything observable from one simulation. */
struct TierRun
{
    sim::RunStats stats;
    std::vector<sim::TimelineEvent> events;
    std::map<size_t, sim::InstrStalls> profile;
    std::string checkMsg;
};

void
expectBitIdentical(const TierRun &ref, const TierRun &fast)
{
    const sim::RunStats &a = ref.stats;
    const sim::RunStats &b = fast.stats;
    EXPECT_EQ(bits(a.cycles), bits(b.cycles));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.vectorInstructions, b.vectorInstructions);
    EXPECT_EQ(a.scalarInstructions, b.scalarInstructions);
    EXPECT_EQ(a.branchesTaken, b.branchesTaken);
    EXPECT_EQ(a.vectorElements, b.vectorElements);
    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.memoryElements, b.memoryElements);
    EXPECT_EQ(a.scalarMemAccesses, b.scalarMemAccesses);
    EXPECT_EQ(a.scalarCacheHits, b.scalarCacheHits);
    EXPECT_EQ(a.scalarCacheMisses, b.scalarCacheMisses);
    EXPECT_EQ(bits(a.refreshStallCycles), bits(b.refreshStallCycles));
    EXPECT_EQ(bits(a.bankConflictCycles), bits(b.bankConflictCycles));
    EXPECT_EQ(bits(a.loadStorePipeBusy), bits(b.loadStorePipeBusy));
    EXPECT_EQ(bits(a.addPipeBusy), bits(b.addPipeBusy));
    EXPECT_EQ(bits(a.multiplyPipeBusy), bits(b.multiplyPipeBusy));
    EXPECT_EQ(bits(a.portBusyCycles), bits(b.portBusyCycles));

    ASSERT_EQ(ref.events.size(), fast.events.size());
    for (size_t i = 0; i < ref.events.size(); ++i) {
        const sim::TimelineEvent &e = ref.events[i];
        const sim::TimelineEvent &f = fast.events[i];
        SCOPED_TRACE("timeline event " + std::to_string(i) + ": " +
                     e.text);
        EXPECT_EQ(e.pc, f.pc);
        EXPECT_EQ(e.text, f.text);
        EXPECT_EQ(bits(e.issue), bits(f.issue));
        EXPECT_EQ(bits(e.enter), bits(f.enter));
        EXPECT_EQ(bits(e.firstResult), bits(f.firstResult));
        EXPECT_EQ(bits(e.streamEnd), bits(f.streamEnd));
        EXPECT_EQ(bits(e.complete), bits(f.complete));
        EXPECT_EQ(e.pipe, f.pipe);
        EXPECT_EQ(bits(e.busy), bits(f.busy));
        EXPECT_EQ(bits(e.stall), bits(f.stall));
        EXPECT_EQ(e.cause, f.cause);
    }

    ASSERT_EQ(ref.profile.size(), fast.profile.size());
    auto fit = fast.profile.begin();
    for (const auto &[pc, is] : ref.profile) {
        SCOPED_TRACE("profile pc " + std::to_string(pc) + ": " +
                     is.text);
        ASSERT_EQ(pc, fit->first);
        const sim::InstrStalls &js = fit->second;
        EXPECT_EQ(is.text, js.text);
        EXPECT_EQ(is.executions, js.executions);
        EXPECT_EQ(bits(is.totalStall), bits(js.totalStall));
        for (size_t c = 0; c < is.byCause.size(); ++c)
            EXPECT_EQ(bits(is.byCause[c]), bits(js.byCause[c]));
        ++fit;
    }
}

// ------------------------------------------------- LFK x machines

TierRun
runLfk(const lfk::Kernel &k, const machine::MachineConfig &cfg,
       sim::SimTier tier)
{
    sim::SimOptions opt;
    opt.trace = true;
    opt.profile = true;
    opt.tier = tier;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    TierRun r;
    r.stats = s.run();
    r.events = s.timeline().events();
    r.profile = s.profile().entries();
    r.checkMsg = k.check(s);
    return r;
}

TEST(SimDifferential, LfkKernelsBitIdenticalOnAllMachines)
{
    std::vector<int> ids = lfk::lfkIds();
    for (int id : lfk::scalarLfkIds())
        ids.push_back(id);

    for (const auto &[name, cfg] : allMachineConfigs()) {
        for (int id : ids) {
            lfk::Kernel k = lfk::makeKernel(id);
            SCOPED_TRACE("machine " + name + ", " + k.name);
            TierRun ref = runLfk(k, cfg, sim::SimTier::Reference);
            TierRun fast = runLfk(k, cfg, sim::SimTier::Fast);
            expectBitIdentical(ref, fast);
            // The functional check must pass outright on the
            // canonical C-240. On what-if machines a wider VL can
            // legitimately change reduction rounding past a kernel
            // check's tolerance (identically in both tiers), so
            // there the contract is tier-equality of the verdict.
            EXPECT_EQ(ref.checkMsg, fast.checkMsg);
            if (name == "builtin-c240" || name == "c240")
                EXPECT_EQ(ref.checkMsg, "") << "machine " << name;
        }
    }
}

// --------------------------------------------- corpus x machines
//
// The checked-in regression loops (tests/corpus/*.loop — shrunk
// counterexamples from the compiler fuzz harness) double as
// differential seeds: compile each in scalar mode (always) and vector
// mode (when the vectorizer accepts), run both tiers, and require the
// stats, trace, profile, final memory image, and scalar cells to
// match bitwise on every machine config.

constexpr size_t kArrayWords = 512;
const char *const kArrays[] = {"aa", "bb", "cc", "dd", "ee"};

struct CorpusLoop
{
    std::string name;
    long trip = 150;
    compiler::Loop loop;
};

std::vector<CorpusLoop>
corpusLoops()
{
    namespace fs = std::filesystem;
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(MACS_CORPUS_DIR))
        if (entry.path().extension() == ".loop")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    EXPECT_FALSE(files.empty())
        << "no .loop files under " << MACS_CORPUS_DIR;

    std::vector<CorpusLoop> out;
    for (const fs::path &path : files) {
        std::ifstream in(path);
        if (!in) {
            ADD_FAILURE() << "cannot read " << path.string();
            continue;
        }
        CorpusLoop c;
        c.name = path.filename().string();
        std::string dsl, line;
        while (std::getline(in, line)) {
            std::string trimmed = line;
            trimmed.erase(0, trimmed.find_first_not_of(" \t"));
            if (trimmed.rfind("#!", 0) == 0) {
                std::istringstream meta(trimmed.substr(2));
                std::string key;
                meta >> key;
                if (key == "trip")
                    meta >> c.trip;
                // seed metadata only affects fuzz-env generation;
                // this harness uses a fixed deterministic fill.
                continue;
            }
            if (trimmed.empty() || trimmed[0] == '#')
                continue;
            dsl += line;
            dsl += '\n';
        }
        c.loop = compiler::parseLoop(dsl);
        out.push_back(std::move(c));
    }
    return out;
}

/** Deterministic non-trivial fill (no randomness needed here: the
 *  tiers must agree on every input, so any fixed one serves). */
double
fillValue(size_t i, size_t array_index)
{
    return 0.5 + 0.001953125 * static_cast<double>(
                     (7 * i + 13 * array_index) % 512);
}

TierRun
runCorpus(const CorpusLoop &c, const machine::MachineConfig &cfg,
          bool vectorize, sim::SimTier tier,
          std::vector<std::vector<double>> &mem_out,
          std::vector<uint64_t> &scalar_out)
{
    compiler::CompileOptions copt;
    copt.tripCount = c.trip;
    copt.vectorize = vectorize;
    for (const char *name : kArrays)
        copt.arrays.push_back({name, kArrayWords});
    compiler::CompileResult res = compiler::compile(c.loop, copt);

    sim::SimOptions opt;
    opt.trace = true;
    opt.profile = true;
    opt.tier = tier;
    sim::Simulator s(cfg, res.program, opt);
    for (size_t a = 0; a < std::size(kArrays); ++a) {
        std::vector<double> v(kArrayWords);
        for (size_t i = 0; i < v.size(); ++i)
            v[i] = fillValue(i, a);
        s.memory().fillDoubles(kArrays[a], v);
    }
    for (const char *cell : {"scalar_p1", "scalar_p2", "scalar_p3",
                             "scalar_acc"})
        if (res.program.hasDataSymbol(cell))
            s.memory().fillDoubles(
                cell, {cell[7] == 'a' ? 0.0 : 1.25 + 0.125 * cell[8]});

    TierRun r;
    r.stats = s.run();
    r.events = s.timeline().events();
    r.profile = s.profile().entries();

    mem_out.clear();
    for (const char *name : kArrays) {
        std::vector<double> v =
            s.memory().readDoubles(name, kArrayWords);
        mem_out.push_back(std::move(v));
    }
    scalar_out.clear();
    for (const char *cell : {"scalar_p1", "scalar_p2", "scalar_p3",
                             "scalar_acc"})
        if (res.program.hasDataSymbol(cell))
            scalar_out.push_back(std::bit_cast<uint64_t>(
                s.memory().readDoubles(cell, 1)[0]));
    return r;
}

TEST(SimDifferential, CorpusLoopsBitIdenticalOnAllMachines)
{
    auto machines = allMachineConfigs();
    for (const CorpusLoop &c : corpusLoops()) {
        compiler::SourceAnalysis sa = compiler::analyzeSource(c.loop);
        for (const auto &[name, cfg] : machines) {
            for (bool vectorize : {false, true}) {
                if (vectorize && !sa.vectorizable)
                    continue;
                SCOPED_TRACE(c.name + " on " + name +
                             (vectorize ? " (vector)" : " (scalar)"));
                std::vector<std::vector<double>> mem_r, mem_f;
                std::vector<uint64_t> sc_r, sc_f;
                TierRun ref =
                    runCorpus(c, cfg, vectorize,
                              sim::SimTier::Reference, mem_r, sc_r);
                TierRun fast = runCorpus(c, cfg, vectorize,
                                         sim::SimTier::Fast, mem_f,
                                         sc_f);
                expectBitIdentical(ref, fast);
                ASSERT_EQ(mem_r.size(), mem_f.size());
                for (size_t a = 0; a < mem_r.size(); ++a)
                    for (size_t i = 0; i < mem_r[a].size(); ++i)
                        ASSERT_EQ(bits(mem_r[a][i]), bits(mem_f[a][i]))
                            << kArrays[a] << "[" << i << "]";
                ASSERT_EQ(sc_r, sc_f);
            }
        }
    }
}

// ----------------------------------- report bytes across workers

std::vector<pipeline::BatchJob>
reportJobs(sim::SimTier tier)
{
    std::vector<pipeline::BatchJob> jobs;
    for (int id : {1, 7, 12}) {
        lfk::Kernel k = lfk::makeKernel(id);
        pipeline::BatchJob job;
        job.label = k.name;
        job.kernel = lfk::toKernelCase(k);
        job.config = machine::MachineConfig::convexC240();
        job.options.tier = tier;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

std::string
batchJson(sim::SimTier tier, size_t workers)
{
    pipeline::EngineOptions opt;
    opt.workers = workers;
    pipeline::BatchEngine engine(opt);
    pipeline::BatchResult r = engine.run(reportJobs(tier));
    EXPECT_EQ(r.stats.failures, 0u);
    return pipeline::renderBatchJson(r, /*include_timing=*/false);
}

TEST(SimDifferential, BatchReportsByteIdenticalAcrossTiers)
{
    for (size_t workers : {1u, 4u, 16u}) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        EXPECT_EQ(batchJson(sim::SimTier::Reference, workers),
                  batchJson(sim::SimTier::Fast, workers));
    }
}

std::string
sweepJson(sim::SimTier tier, size_t workers)
{
    pipeline::SweepRequest request;
    for (const auto &[name, cfg] : allMachineConfigs())
        request.machines.push_back(
            {name, "", "<differential>", cfg});
    for (int id : {1, 7, 12})
        request.kernels.push_back(
            lfk::toKernelCase(lfk::makeKernel(id)));
    request.options.tier = tier;

    pipeline::EngineOptions opt;
    opt.workers = workers;
    pipeline::BatchEngine engine(opt);
    pipeline::SweepResult r = pipeline::runSweep(request, engine);
    EXPECT_EQ(r.stats.failures, 0u);
    return pipeline::renderSweepJson(r, /*include_timing=*/false);
}

TEST(SimDifferential, SweepReportsByteIdenticalAcrossTiers)
{
    for (size_t workers : {1u, 4u, 16u}) {
        SCOPED_TRACE("workers " + std::to_string(workers));
        EXPECT_EQ(sweepJson(sim::SimTier::Reference, workers),
                  sweepJson(sim::SimTier::Fast, workers));
    }
}

// --------------------------------------- tier / cache interaction

TEST(SimDifferential, TierNamesRoundTrip)
{
    EXPECT_STREQ(sim::simTierName(sim::SimTier::Fast), "fast");
    EXPECT_STREQ(sim::simTierName(sim::SimTier::Reference),
                 "reference");
    sim::SimTier t = sim::SimTier::Fast;
    EXPECT_TRUE(sim::parseSimTier("reference", t));
    EXPECT_EQ(t, sim::SimTier::Reference);
    EXPECT_TRUE(sim::parseSimTier("fast", t));
    EXPECT_EQ(t, sim::SimTier::Fast);
    EXPECT_FALSE(sim::parseSimTier("turbo", t));
    EXPECT_EQ(t, sim::SimTier::Fast);
}

TEST(SimDifferential, TierIsPartOfTheOptionsFingerprint)
{
    sim::SimOptions fast, ref;
    ref.tier = sim::SimTier::Reference;
    EXPECT_NE(sim::fingerprint(fast), sim::fingerprint(ref));
}

TEST(SimDifferential, TiersNeverAliasACacheEntry)
{
    // Same kernel, same machine, same knobs — only the tier differs.
    // The two jobs must land on different cache keys and the second
    // must be a miss, even inside one engine run.
    lfk::Kernel k = lfk::makeKernel(1);
    std::vector<pipeline::BatchJob> jobs(2);
    for (auto &job : jobs) {
        job.kernel = lfk::toKernelCase(k);
        job.config = machine::MachineConfig::convexC240();
    }
    jobs[0].options.tier = sim::SimTier::Reference;
    jobs[1].options.tier = sim::SimTier::Fast;

    pipeline::EngineOptions opt;
    opt.workers = 1;
    pipeline::BatchEngine engine(opt);
    pipeline::BatchResult r = engine.run(jobs);
    ASSERT_EQ(r.results.size(), 2u);
    ASSERT_EQ(r.stats.failures, 0u);
    EXPECT_NE(r.results[0].key, r.results[1].key);
    EXPECT_FALSE(r.results[1].timing.cacheHit);

    // An identical-tier rerun, by contrast, must hit.
    pipeline::BatchResult again = engine.run({jobs[1]});
    ASSERT_EQ(again.results.size(), 1u);
    EXPECT_TRUE(again.results[0].timing.cacheHit);
}

} // namespace
} // namespace macs
