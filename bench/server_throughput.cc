/**
 * @file
 * Throughput and latency of `macs serve` (docs/SERVER.md) measured
 * through real loopback sockets with the in-process HTTP client.
 *
 * Three configurations are measured, all POSTing the same small LFK
 * job mix to /v1/analyze:
 *
 *  - SINGLE-SHOT: a fresh server + service is constructed, started,
 *    queried ONCE, and drained per request — the per-invocation cost
 *    a one-shot `macs` process pays on every query (minus exec/link),
 *    which is the serving baseline (docs/SERVER.md).
 *  - COLD: a resident server with the memo cache disabled, at
 *    1 / 4 / 16 concurrent keep-alive clients; every request pays a
 *    full hierarchy analysis — the per-request compute floor.
 *  - WARM: the LRU cache enabled and pre-warmed, so every request is
 *    a cache hit and the measurement isolates HTTP + dispatch.
 *
 * Printed per client count: requests/sec and p50/p99 request latency.
 * The acceptance floor asserted on exit: warm-cache RPS at 4 clients
 * >= 5x the cold single-shot rate — a resident warm server must beat
 * paying bootstrap per query by at least that factor. The resident
 * warm/cold ratio is also printed (informative; host-dependent).
 *
 * Worker counts track client counts (a session pins a worker for the
 * life of its connection), so the numbers are meaningful on small
 * (even single-CPU) hosts: clients then time-slice one core and the
 * cold/warm contrast is still the compute-vs-lookup contrast.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "support/table.h"

namespace {

using namespace macs;
using Clock = std::chrono::steady_clock;

/** The request mix: a small rotating LFK id set. */
const int kIds[] = {1, 2, 3};
constexpr size_t kIdCount = sizeof(kIds) / sizeof(kIds[0]);

std::string
bodyFor(int id)
{
    return "{\"kind\": \"lfk\", \"id\": " + std::to_string(id) + "}";
}

struct Measurement
{
    double rps = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    size_t requests = 0;
    size_t errors = 0;
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/**
 * Drive @p clients keep-alive connections for @p per_client requests
 * each against the server on @p port and aggregate RPS + latency.
 */
Measurement
drive(int port, size_t clients, size_t per_client)
{
    std::vector<std::vector<double>> lat(clients);
    std::atomic<size_t> errors{0};
    std::vector<std::thread> threads;
    threads.reserve(clients);

    Clock::time_point begin = Clock::now();
    for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            server::HttpClient client("127.0.0.1", port, 30000);
            lat[c].reserve(per_client);
            for (size_t i = 0; i < per_client; ++i) {
                int id = kIds[(c + i) % kIdCount];
                server::ClientResponse resp;
                Clock::time_point t0 = Clock::now();
                bool ok = client.requestWithRetry(
                    "POST", "/v1/analyze", bodyFor(id), resp,
                    /*attempts=*/3, /*backoff_ms=*/5);
                Clock::time_point t1 = Clock::now();
                if (!ok || resp.status != 200) {
                    errors.fetch_add(1);
                    continue;
                }
                lat[c].push_back(
                    std::chrono::duration<double, std::micro>(t1 - t0)
                        .count());
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    double wall_s =
        std::chrono::duration<double>(Clock::now() - begin).count();

    std::vector<double> all;
    for (const auto &v : lat)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());

    Measurement m;
    m.requests = all.size();
    m.errors = errors.load();
    m.rps = wall_s > 0.0
                ? static_cast<double>(all.size()) / wall_s
                : 0.0;
    m.p50Us = percentile(all, 0.50);
    m.p99Us = percentile(all, 0.99);
    return m;
}

/** One server lifetime: start, optionally pre-warm, drive, drain. */
Measurement
measure(size_t clients, size_t per_client, bool warm_cache)
{
    obs::Registry registry;
    server::ServerOptions opt;
    opt.workers = clients + 1; // sessions pin workers
    opt.queueCapacity = 2 * clients + 4;
    opt.requestTimeoutMs = 30000;
    opt.metrics = &registry;
    opt.service.metrics = &registry;
    opt.service.useCache = warm_cache;
    opt.service.cacheCapacity = warm_cache ? 1024 : 0;
    server::Server srv(std::move(opt));
    srv.start();

    if (warm_cache) {
        // Pre-warm: one request per unique id so the measured phase
        // is 100% hits.
        server::HttpClient client("127.0.0.1", srv.port(), 30000);
        for (int id : kIds) {
            server::ClientResponse resp;
            if (!client.request("POST", "/v1/analyze", bodyFor(id),
                                resp) ||
                resp.status != 200)
                std::fprintf(stderr, "warm-up request failed\n");
        }
    }

    Measurement m = drive(srv.port(), clients, per_client);
    srv.drain();
    return m;
}

/**
 * Cold single-shot baseline: each query constructs, starts, and
 * drains its own server with the cache disabled — what a one-shot
 * process invocation pays, minus exec/link.
 */
Measurement
measureSingleShot(size_t n)
{
    std::vector<double> lat;
    lat.reserve(n);
    size_t errors = 0;
    Clock::time_point begin = Clock::now();
    for (size_t i = 0; i < n; ++i) {
        Clock::time_point t0 = Clock::now();
        obs::Registry registry;
        server::ServerOptions opt;
        opt.workers = 1;
        opt.metrics = &registry;
        opt.service.metrics = &registry;
        opt.service.useCache = false;
        server::Server srv(std::move(opt));
        srv.start();
        server::HttpClient client("127.0.0.1", srv.port(), 30000);
        server::ClientResponse resp;
        bool ok = client.request("POST", "/v1/analyze",
                                 bodyFor(kIds[i % kIdCount]), resp);
        srv.drain();
        Clock::time_point t1 = Clock::now();
        if (!ok || resp.status != 200) {
            ++errors;
            continue;
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count());
    }
    double wall_s =
        std::chrono::duration<double>(Clock::now() - begin).count();
    std::sort(lat.begin(), lat.end());
    Measurement m;
    m.requests = lat.size();
    m.errors = errors;
    m.rps = wall_s > 0.0
                ? static_cast<double>(lat.size()) / wall_s
                : 0.0;
    m.p50Us = percentile(lat, 0.50);
    m.p99Us = percentile(lat, 0.99);
    return m;
}

} // namespace

int
main()
{
    std::printf("=== macs serve throughput: POST /v1/analyze, "
                "%zu-id LFK mix ===\n\n",
                kIdCount);
    std::printf("hardware threads: %u\n\n",
                std::thread::hardware_concurrency());

    // Untimed warm-up server: pays thread-pool creation, allocator
    // growth, and first-analysis code paths outside any sample.
    (void)measure(1, 4, /*warm_cache=*/true);

    Table t({"clients", "cache", "requests", "errors", "req/s",
             "p50 us", "p99 us"});

    Measurement shot = measureSingleShot(8);
    t.addRow({"1", "single-shot", Table::num((long)shot.requests),
              Table::num((long)shot.errors), Table::num(shot.rps, 1),
              Table::num(shot.p50Us, 0), Table::num(shot.p99Us, 0)});
    if (shot.errors != 0) {
        std::printf("%s\n", t.render().c_str());
        std::printf("ERROR: single-shot request failures (%zu)\n",
                    shot.errors);
        return 1;
    }

    double cold4 = 0.0, warm4 = 0.0;
    for (size_t clients : {1u, 4u, 16u}) {
        // Cold pays a full analysis per request: keep the request
        // count modest so the bench stays quick on small hosts.
        size_t cold_n = 6;
        size_t warm_n = 60;
        Measurement cold =
            measure(clients, cold_n, /*warm_cache=*/false);
        Measurement warm =
            measure(clients, warm_n, /*warm_cache=*/true);
        if (clients == 4) {
            cold4 = cold.rps;
            warm4 = warm.rps;
        }
        t.addRow({Table::num((long)clients), "cold",
                  Table::num((long)cold.requests),
                  Table::num((long)cold.errors),
                  Table::num(cold.rps, 1), Table::num(cold.p50Us, 0),
                  Table::num(cold.p99Us, 0)});
        t.addRow({Table::num((long)clients), "warm",
                  Table::num((long)warm.requests),
                  Table::num((long)warm.errors),
                  Table::num(warm.rps, 1), Table::num(warm.p50Us, 0),
                  Table::num(warm.p99Us, 0)});
        if (cold.errors != 0 || warm.errors != 0) {
            std::printf("%s\n", t.render().c_str());
            std::printf("ERROR: request failures at %zu clients "
                        "(cold %zu, warm %zu)\n",
                        clients, cold.errors, warm.errors);
            return 1;
        }
    }
    std::printf("%s\n", t.render().c_str());

    double shot_ratio = shot.rps > 0.0 ? warm4 / shot.rps : 0.0;
    bool met = shot_ratio >= 5.0;
    std::printf("warm RPS at 4 clients vs cold single-shot: %.1fx "
                "(floor >= 5x): %s\n",
                shot_ratio, met ? "met" : "NOT met");
    double resident_ratio = cold4 > 0.0 ? warm4 / cold4 : 0.0;
    std::printf("resident warm/cold RPS at 4 clients: %.1fx "
                "(informative)\n\n",
                resident_ratio);

    std::printf(
        "single-shot pays server + service bootstrap per query (the\n"
        "one-shot CLI pattern); cold keeps the server resident but\n"
        "disables the memo cache, so each request pays a full MACS\n"
        "hierarchy analysis; warm pre-computes the id mix so each\n"
        "request is an LRU cache hit and the remaining cost is HTTP\n"
        "parsing + dispatch + JSON rendering.\n");
    return met ? 0 : 1;
}
