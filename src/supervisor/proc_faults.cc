#include "supervisor/proc_faults.h"

#include <csignal>
#include <cstdio>
#include <thread>

namespace macs::supervisor {

namespace {

void
armTimer(int delay_ms, int signo, int slot, const char *what)
{
    std::fprintf(stderr,
                 "macs serve: worker %d: %s fault armed, firing in "
                 "%d ms\n",
                 slot, what, delay_ms);
    std::thread([delay_ms, signo]() {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
        ::raise(signo);
    }).detach();
}

} // namespace

void
armProcFaults(const faults::FaultInjector &injector, int slot,
              int incarnation)
{
    uint64_t key = procFaultKey(slot, incarnation);
    int delay_ms = static_cast<int>(
        injector.param(faults::Site::ProcCrash, 200.0) *
        (1 + slot));
    if (injector.shouldFire(faults::Site::ProcCrash, key)) {
        armTimer(delay_ms, SIGKILL, slot, "proc-crash");
        return; // crash beats hang for the same key
    }
    delay_ms = static_cast<int>(
        injector.param(faults::Site::ProcHang, 200.0) * (1 + slot));
    if (injector.shouldFire(faults::Site::ProcHang, key))
        armTimer(delay_ms, SIGSTOP, slot, "proc-hang");
}

} // namespace macs::supervisor
