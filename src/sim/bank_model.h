/**
 * @file
 * Element-granularity bank simulation: the ground-truth model the
 * analytic stride-rate formula (MemoryPort::strideRate) is validated
 * against.
 *
 * The interleaved memory is modeled bank by bank: the port issues at
 * most one request per cycle, a request must wait for its bank's busy
 * timer, and each access occupies its bank for bankBusyCycles. This is
 * slower than the closed form but makes no periodicity assumptions, so
 * it also answers questions the formula cannot: alignment effects,
 * mixed-stride request interleaving, and the transient before a stream
 * reaches its steady rate.
 */

#ifndef MACS_SIM_BANK_MODEL_H
#define MACS_SIM_BANK_MODEL_H

#include <cstdint>
#include <vector>

#include "machine/machine_config.h"

namespace macs::sim {

/** Outcome of a bank-accurate stream simulation. */
struct BankSimResult
{
    double cycles = 0.0;        ///< first issue to last issue + busy
    double sustainedRate = 0.0; ///< asymptotic cycles per element
    double transientCycles = 0.0; ///< extra cycles before steady state
};

/**
 * Simulate a single @p elements-long stream of word stride @p stride
 * starting at word @p start_word.
 */
BankSimResult simulateBankStream(const machine::MemoryConfig &config,
                                 int elements, int64_t stride,
                                 uint64_t start_word = 0);

/**
 * Simulate two interleaved streams (a load and a store of the same
 * length, alternating requests) — the port pattern of a copy loop.
 * Returns total cycles for both streams.
 */
double simulateInterleavedStreams(const machine::MemoryConfig &config,
                                  int elements, int64_t stride_a,
                                  uint64_t start_a, int64_t stride_b,
                                  uint64_t start_b);

} // namespace macs::sim

#endif // MACS_SIM_BANK_MODEL_H
