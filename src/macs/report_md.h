/**
 * @file
 * Markdown report generation: renders a complete paper-vs-measured
 * document (Tables 2-5 plus the gap diagnosis per kernel) from a set
 * of kernel analyses. Used by tools/generate_report so downstream
 * users can regenerate the reproduction record on any machine variant.
 */

#ifndef MACS_MACS_REPORT_MD_H
#define MACS_MACS_REPORT_MD_H

#include <map>
#include <string>

#include "macs/hierarchy.h"
#include "machine/machine_config.h"

namespace macs::model {

/**
 * Render the full reproduction report for @p analyses (keyed by LFK
 * id) on @p config. When @p include_paper_columns is set, the paper's
 * published values (lfk::paperReference()) are shown alongside; turn
 * it off when reporting a non-C-240 machine variant where those
 * numbers do not apply.
 */
std::string
renderMarkdownReport(const std::map<int, KernelAnalysis> &analyses,
                     const machine::MachineConfig &config,
                     bool include_paper_columns = true);

} // namespace macs::model

#endif // MACS_MACS_REPORT_MD_H
