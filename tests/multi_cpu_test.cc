/**
 * @file
 * Multi-CPU contention fixed-point tests: convergence, consistency
 * with the paper's observed band, masking behaviour, and lock-step vs
 * independent mixes.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "machine/machine_config.h"
#include "sim/multi_cpu.h"
#include "support/logging.h"

namespace macs::sim {
namespace {

machine::MachineConfig
paperMachine()
{
    return machine::MachineConfig::convexC240();
}

/** Keep kernels/programs alive for the duration of a test. */
struct JobSet
{
    std::vector<lfk::Kernel> kernels;
    std::vector<CpuJob> jobs;

    explicit JobSet(const std::vector<int> &ids)
    {
        kernels.reserve(ids.size());
        for (int id : ids)
            kernels.push_back(lfk::makeKernel(id));
        for (auto &k : kernels)
            jobs.push_back({&k.program, k.setup});
    }
};

TEST(MultiCpu, SingleCpuHasNoContention)
{
    JobSet set({1});
    MultiCpuResult r = runMultiCpu(set.jobs, paperMachine());
    ASSERT_TRUE(r.converged);
    EXPECT_DOUBLE_EQ(r.factor[0], 1.0);
}

TEST(MultiCpu, FourMemoryBoundKernelsReachPaperBand)
{
    // Four copies of the memory-saturated LFK1: utilization ~1 each,
    // so the fixed point lands at 1 + 0.15*3 ~ 1.45 — inside the
    // paper's 56-64 ns band (1.4 .. 1.6).
    JobSet set({1, 1, 1, 1});
    MultiCpuResult r = runMultiCpu(set.jobs, paperMachine());
    ASSERT_TRUE(r.converged);
    for (double f : r.factor) {
        EXPECT_GE(f, 1.35);
        EXPECT_LE(f, 1.60);
    }
    for (double u : r.utilization)
        EXPECT_GT(u, 0.85);
}

TEST(MultiCpu, LockStepContendsLess)
{
    JobSet ind({1, 1, 1, 1});
    JobSet ls({1, 1, 1, 1});
    MultiCpuOptions lock;
    lock.mix = WorkloadMix::LockStep;
    MultiCpuResult ri = runMultiCpu(ind.jobs, paperMachine());
    MultiCpuResult rl = runMultiCpu(ls.jobs, paperMachine(), lock);
    EXPECT_LT(rl.factor[0], ri.factor[0]);
    EXPECT_LT(rl.stats[0].cycles, ri.stats[0].cycles);
}

TEST(MultiCpu, LowUtilizationNeighborsContendLess)
{
    // LFK5/11 run on the scalar unit with sparse memory traffic; an
    // LFK1 sharing memory with them suffers much less than with three
    // other vector kernels.
    JobSet heavy({1, 1, 1, 1});
    JobSet light({1, 5, 11, 5});
    MultiCpuResult rh = runMultiCpu(heavy.jobs, paperMachine());
    MultiCpuResult rlite = runMultiCpu(light.jobs, paperMachine());
    EXPECT_LT(rlite.factor[0], rh.factor[0] - 0.1);
}

TEST(MultiCpu, DegradationMatchesRuleOfThumbShape)
{
    JobSet set({1, 3, 10, 12});
    MultiCpuResult multi = runMultiCpu(set.jobs, paperMachine());
    ASSERT_TRUE(multi.converged);

    JobSet solo({1});
    MultiCpuResult single = runMultiCpu(solo.jobs, paperMachine());
    double deg =
        multi.stats[0].cycles / single.stats[0].cycles - 1.0;
    // Memory-saturated inner loops expose most of the stream slowdown.
    EXPECT_GT(deg, 0.10);
    EXPECT_LT(deg, 0.60);
}

TEST(MultiCpu, FixedPointIsMonotoneInCpuCount)
{
    double prev = 1.0;
    for (size_t n = 1; n <= 4; ++n) {
        JobSet set(std::vector<int>(n, 1));
        MultiCpuResult r = runMultiCpu(set.jobs, paperMachine());
        EXPECT_GE(r.factor[0], prev - 1e-9) << n << " CPUs";
        prev = r.factor[0];
    }
}

TEST(MultiCpu, GuardsBadInput)
{
    EXPECT_THROW(runMultiCpu({}, paperMachine()), PanicError);
    JobSet set({1, 1, 1, 1});
    auto jobs = set.jobs;
    jobs.push_back(jobs.front());
    EXPECT_THROW(runMultiCpu(jobs, paperMachine()), PanicError);
    CpuJob null_job;
    EXPECT_THROW(runMultiCpu({null_job}, paperMachine()), PanicError);
}

TEST(MultiCpu, DeterministicAcrossRuns)
{
    JobSet a({1, 3});
    JobSet b({1, 3});
    MultiCpuResult ra = runMultiCpu(a.jobs, paperMachine());
    MultiCpuResult rb = runMultiCpu(b.jobs, paperMachine());
    EXPECT_DOUBLE_EQ(ra.stats[0].cycles, rb.stats[0].cycles);
    EXPECT_DOUBLE_EQ(ra.factor[1], rb.factor[1]);
}

} // namespace
} // namespace macs::sim
