/**
 * @file
 * Machine description for the modeled Convex C-240 and what-if variants.
 *
 * All quantities the MACS bounds and the simulator need are collected
 * here and are tunable: the per-opcode X/Y/Z/B vector timing parameters
 * of the paper's Table 1, the memory geometry (banks, bank busy time,
 * refresh), the chaining rules of section 3.3, and the scalar-unit
 * timing used only by the simulator.
 *
 * Timing parameter meaning for a single vector instruction (paper
 * equation 5, execution time = X + Y + Z * VL):
 *   X = clock cycles of initial (issue) overhead,
 *   Y = additional cycles until the first element result is available,
 *   Z = additional cycles per vector element,
 *   B = "bubble": empirically calibrated cycles lost between successive
 *       instructions tailgating in the same pipe (section 3.3).
 */

#ifndef MACS_MACHINE_MACHINE_CONFIG_H
#define MACS_MACHINE_MACHINE_CONFIG_H

#include <cstdint>
#include <map>
#include <string>

#include "isa/opcode.h"

namespace macs::machine {

/** X/Y/Z/B timing of one vector opcode (see file comment). */
struct VectorTiming
{
    double x = 2.0;      ///< issue overhead cycles
    double y = 10.0;     ///< additional cycles to first result
    double z = 1.0;      ///< cycles per element
    double bubble = 1.0; ///< tailgating bubble cycles (B)
};

/** Interleaved memory system geometry. */
struct MemoryConfig
{
    int banks = 32;            ///< number of interleaved banks
    int bankBusyCycles = 8;    ///< bank cycle (busy) time
    int wordBytes = 8;         ///< memory word size
    int refreshPeriodCycles = 400; ///< refresh every 16 us at 25 MHz
    int refreshDurationCycles = 8; ///< memory unavailable during refresh
    bool refreshEnabled = true;
    /**
     * Cycles a CPU's stream loses re-arbitrating for a bank another
     * CPU holds busy (multi-CPU simulation only; a single CPU never
     * pays it). The paper conjectures the 56-64 ns effective access
     * time under multi-user load comes from just this kind of
     * port/controller handshake restart (section 4.2); the value is
     * calibrated so 4 independent memory-bound CPUs land in that band.
     */
    int arbitrationRestartCycles = 5;
};

/** Chime formation rules (paper section 3.3). */
struct ChainingConfig
{
    bool chainingEnabled = true;   ///< false models a Cray-2-like VP
    int maxReadsPerPair = 2;       ///< vector register pair read ports
    int maxWritesPerPair = 1;      ///< vector register pair write ports
    bool enforcePairLimits = true;
    bool scalarMemSplitsChimes = true; ///< single CPU<->memory port
    /**
     * When true the FP add and multiply functional units share one
     * pipe (a 2-pipe VP: load/store + one FP pipe), so an add and a
     * multiply can no longer execute in the same chime. Models a
     * cheaper C-240 derivative; the baseline C-240 has three pipes.
     */
    bool fpAddMulShared = false;
};

/** Scalar (ASU) timing; used by the simulator only. */
struct ScalarTiming
{
    int issueCycles = 1;        ///< issue slot occupancy of a scalar op
    int aluLatency = 1;         ///< result latency of scalar ALU ops
    int loadLatency = 6;        ///< scalar load latency on a cache hit
    int loadMissLatency = 20;   ///< scalar load latency on a cache miss
    int storeCycles = 2;        ///< memory port occupancy of scalar store
    int branchResolveCycles = 3;///< issue stall after a taken branch
    int vectorIssueCycles = 2;  ///< issue slot occupancy of a vector op
    int fpLatency = 6;          ///< scalar FP add/sub/mul result latency
    int fpDivLatency = 30;      ///< scalar FP divide result latency
};

/**
 * The ASU's scalar data cache (paper section 2: "the ASU contains the
 * scalar function units, scalar registers, and cache"; the VP bypasses
 * it). The paper publishes no geometry, so the defaults are
 * representative of the era; scalar accesses still arbitrate for the
 * single CPU<->memory port either way (the paper's chime-splitting
 * rule is unconditional). Vector stores invalidate overlapping lines
 * for coherence; scalar stores write through and invalidate their
 * line.
 */
struct ScalarCacheConfig
{
    bool enabled = true;
    int lines = 64;     ///< direct-mapped line count
    int lineWords = 4;  ///< 64-bit words per line
};

/**
 * Complete machine description.
 *
 * Defaults construct the paper's Convex C-240 (one CPU). Named factory
 * functions build ablation variants used by bench/ablation_machine.
 */
struct MachineConfig
{
    double clockMhz = 25.0; ///< 40 ns effective system clock
    int maxVectorLength = 128;
    /**
     * CPUs sharing the memory system (the real C-240 has four). Used
     * by the multi-CPU drivers (`runMultiCpu`, `mp::runCoupled`);
     * single-CPU bounds and simulations ignore it.
     */
    int cpus = 4;

    MemoryConfig memory;
    ChainingConfig chaining;
    ScalarTiming scalar;
    ScalarCacheConfig scalarCache;

    /**
     * Multiplier the MACS model applies to runs of >= 4 successive
     * memory chimes (paper: refresh costs 8 cycles every 400, ~2%).
     */
    double refreshPenaltyFactor = 1.02;
    /** Cyclic run length (cycles) at which the penalty starts. */
    double refreshRunThresholdCycles = 400.0;

    /** Per-opcode timing; opcodes not present fall back to defaults. */
    std::map<isa::Opcode, VectorTiming> vectorTiming;

    /** Timing for @p op; panics when @p op is not a vector opcode. */
    const VectorTiming &timing(isa::Opcode op) const;

    /** Replace the timing of @p op (calibration, what-if studies). */
    void setTiming(isa::Opcode op, const VectorTiming &t);

    /** Clock period in nanoseconds. */
    double clockNs() const { return 1000.0 / clockMhz; }

    /**
     * Canonical text serialization of every timing-relevant field,
     * including the per-opcode timing overrides. Two configurations
     * with equal fingerprints produce identical bounds and identical
     * simulated runs. Used by golden/differential tests; the batch
     * pipeline keys its memo cache on contentHash() instead (same
     * field set, no multi-KB string build on the hot path).
     */
    std::string fingerprint() const;

    /**
     * FNV-1a content hash over every field fingerprint() serializes.
     * This is the machine component of the pipeline memo-cache key,
     * so two machine files that happen to share a *name* but differ
     * in any constant can never alias a cache entry. Keep in sync
     * with fingerprint() (machine_test pins fingerprint-equal ⇔
     * contentHash-equal across all shipped variants).
     */
    uint64_t contentHash() const;

    /** The paper's Convex C-240 configuration. */
    static MachineConfig convexC240();

    /** C-240 with all tailgating bubbles forced to zero. */
    static MachineConfig noBubbles();

    /** C-240 with memory refresh disabled. */
    static MachineConfig noRefresh();

    /** C-240 without operand chaining (Cray-2 style). */
    static MachineConfig noChaining();

    /** C-240 with a different bank count. */
    static MachineConfig withBanks(int banks);

    /** C-240 with the ASU's scalar data cache disabled. */
    static MachineConfig noScalarCache();

    /**
     * Resolve a named machine variant ("baseline", "no-bubbles",
     * "no-refresh", "no-chaining", "no-scalar-cache"); fatal() on an
     * unknown name. The CLI (`macs batch --variant`) and the analysis
     * server (`macs serve`) share this resolver so both accept exactly
     * the same names.
     */
    static MachineConfig variant(const std::string &name);

    /**
     * Parse a machine-description file (docs/MACHINES.md) and return
     * the configuration it describes. This is the canonical way to
     * construct a machine; the built-in tables above remain as the
     * fallback and as the differential oracle for machines/c240.machine.
     * Throws DiagnosticError listing every problem in the file.
     * Defined in machine_file.cc.
     */
    static MachineConfig fromFile(const std::string &path);
};

} // namespace macs::machine

#endif // MACS_MACHINE_MACHINE_CONFIG_H
