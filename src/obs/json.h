/**
 * @file
 * Minimal dependency-free JSON reader used to *verify* the documents
 * this library emits: the trace-export round-trip test re-parses the
 * Chrome trace JSON and re-sums span durations, and `macs trace`
 * self-checks the file it just wrote. Supports the full JSON value
 * grammar (objects, arrays, strings with escapes, numbers, booleans,
 * null); numbers are doubles. fatal() on malformed input with a byte
 * offset.
 *
 * This is a reader for machine-generated documents, not a general
 * interchange layer: no streaming, no UTF-16 surrogate decoding
 * (\uXXXX escapes above 0x7f are preserved as '?'), inputs are
 * expected to fit in memory.
 */

#ifndef MACS_OBS_JSON_H
#define MACS_OBS_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace macs::obs {

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Typed accessors; fatal() on kind mismatch. @{ */
    bool asBool() const;
    double asDouble() const;
    const std::string &asString() const;
    /** @} */

    /** Array access. size() is 0 for non-arrays/objects. @{ */
    size_t size() const;
    const JsonValue &at(size_t index) const;
    /** @} */

    /** Object access: member lookup. @{ */
    const JsonValue *find(const std::string &key) const;
    /** fatal() when @p key is missing. */
    const JsonValue &at(const std::string &key) const;
    bool has(const std::string &key) const
    {
        return find(key) != nullptr;
    }
    /** @} */

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return object_;
    }

    // Construction is via parseJson() and the parser internals.
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Parse @p text as one JSON document; fatal() on malformed input. */
JsonValue parseJson(std::string_view text);

} // namespace macs::obs

#endif // MACS_OBS_JSON_H
