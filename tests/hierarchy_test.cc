/**
 * @file
 * Hierarchy-level tests: the ordering and gap properties the paper's
 * evaluation establishes (sections 4.1-4.4) must hold on our machine
 * model for every kernel.
 */

#include <gtest/gtest.h>

#include <map>

#include "lfk/kernels.h"
#include "macs/contention_level.h"
#include "macs/hierarchy.h"
#include "machine/machine_config.h"
#include "support/logging.h"

namespace macs::model {
namespace {

/** Analyses are expensive; compute one per kernel for the suite. */
const KernelAnalysis &
analysisFor(int id)
{
    static std::map<int, KernelAnalysis> cache;
    auto it = cache.find(id);
    if (it == cache.end()) {
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        lfk::Kernel k = lfk::makeKernel(id);
        it = cache.emplace(id, analyzeKernel(lfk::toKernelCase(k), cfg))
                 .first;
    }
    return it->second;
}

class HierarchyPerKernel : public ::testing::TestWithParam<int>
{
};

TEST_P(HierarchyPerKernel, BoundsAreMonotone)
{
    const KernelAnalysis &a = analysisFor(GetParam());
    EXPECT_LE(a.maBound.bound, a.macBound.bound + 1e-9);
    EXPECT_LE(a.macBound.bound, a.macs.cpl + 1e-9);
    EXPECT_LE(a.macs.cpl, a.tP + 1e-9)
        << "MACS bound exceeds measured time";
}

TEST_P(HierarchyPerKernel, AxSandwich)
{
    // Equation 18: MAX(t_X, t_A) <= t_p <= t_X + t_A.
    const KernelAnalysis &a = analysisFor(GetParam());
    EXPECT_LE(std::max(a.tA, a.tX), a.tP + 1e-9);
    EXPECT_LE(a.tP, a.tA + a.tX + 1e-9);
}

TEST_P(HierarchyPerKernel, ReducedBoundsModelAxMeasurements)
{
    const KernelAnalysis &a = analysisFor(GetParam());
    // t_MACS^m bounds the access-only time, t_MACS^f the execute-only
    // time (each run still carries scalar code the models exclude, so
    // only the lower-bound direction is guaranteed).
    EXPECT_LE(a.macsMOnly.cpl, a.tA + 1e-9);
    EXPECT_LE(a.macsFOnly.cpl, a.tX + 1e-9);
}

TEST_P(HierarchyPerKernel, MemoryDominatesMacBound)
{
    // Paper section 4.1: t_m' dominates the MAC bound in all ten LFKs.
    const KernelAnalysis &a = analysisFor(GetParam());
    EXPECT_GE(a.macBound.tM, a.macBound.tF);
}

TEST_P(HierarchyPerKernel, MacsExplainsMostOfMeasuredTime)
{
    // Paper: MACS covers >= 90% of t_p except LFKs 2, 4, 6 (short
    // vectors, strides, reductions, scalar overhead).
    const KernelAnalysis &a = analysisFor(GetParam());
    double coverage = a.macs.cpl / a.tP;
    int id = GetParam();
    if (id == 2 || id == 4 || id == 6)
        EXPECT_LT(coverage, 0.90) << "expected a large unmodeled gap";
    else
        EXPECT_GE(coverage, 0.90);
}

TEST_P(HierarchyPerKernel, MeasuredCpfWithinPlausibleRange)
{
    const KernelAnalysis &a = analysisFor(GetParam());
    EXPECT_GT(a.actualCpf(), 0.3);
    EXPECT_LT(a.actualCpf(), 6.0);
}

TEST_P(HierarchyPerKernel, ReportMentionsEveryLevel)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::string report = renderReport(analysisFor(GetParam()), cfg);
    for (const char *needle :
         {"t_MA", "t_MAC", "t_MACS", "t_p", "t_A", "t_X", "diagnosis"})
        EXPECT_NE(report.find(needle), std::string::npos) << needle;
}

INSTANTIATE_TEST_SUITE_P(AllLfk, HierarchyPerKernel,
                         ::testing::ValuesIn(lfk::lfkIds()),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

// ------------------------------------------------ cross-kernel shapes

TEST(HierarchyShapes, MaEqualsMacWhereCompilerAddsNothing)
{
    // Paper Table 4: MA = MAC for LFKs 3, 8, 9, 10 (in CPF the LFK8
    // bound stays FP-limited even though t_m' grows).
    for (int id : {3, 8, 9, 10}) {
        const KernelAnalysis &a = analysisFor(id);
        EXPECT_DOUBLE_EQ(a.maBound.bound, a.macBound.bound)
            << "LFK" << id;
    }
}

TEST(HierarchyShapes, CompilerInsertedLoadsWherePaperSaysSo)
{
    // Paper section 4.4 (LFK 1, 7, 12): shifted operand reuse forces
    // vector reloads, so MAC > MA. LFK2's gathers reload likewise.
    for (int id : {1, 2, 7, 12}) {
        const KernelAnalysis &a = analysisFor(id);
        EXPECT_GT(a.macBound.bound, a.maBound.bound) << "LFK" << id;
        EXPECT_GT(a.mac.loads, a.ma.loads) << "LFK" << id;
    }
}

TEST(HierarchyShapes, MaBoundMemoryLimitedExceptLfk7And8)
{
    for (int id : lfk::lfkIds()) {
        const KernelAnalysis &a = analysisFor(id);
        if (id == 7 || id == 8)
            EXPECT_GT(a.maBound.tF, a.maBound.tM) << "LFK" << id;
        else
            EXPECT_GE(a.maBound.tM, a.maBound.tF) << "LFK" << id;
    }
}

TEST(HierarchyShapes, Lfk8ScalarLoadsSplitChimes)
{
    // Paper: t_MACS >> t_m' for LFK8 because scalar loads split
    // potential chimes; MACS still explains nearly all of t_p.
    const KernelAnalysis &a = analysisFor(8);
    EXPECT_GT(a.macs.cpl, a.macBound.tM * 1.25);
    EXPECT_GE(a.macs.cpl / a.tP, 0.95);
    // The splits are invisible to the reduced models, exactly as the
    // paper notes: an add-multiply chime and a load chime survive.
    EXPECT_LT(a.macsFOnly.cpl, a.macs.cpl);
    EXPECT_LT(a.macsMOnly.cpl, a.macs.cpl);
}

TEST(HierarchyShapes, Lfk7FpPipesNotPerfectlyOverlapped)
{
    // Paper: (t_MACS^f - t_f') > 1 for LFK7 — the adds and multiplies
    // do not pair perfectly, creating a ninth FP chime.
    const KernelAnalysis &a = analysisFor(7);
    EXPECT_GT(a.macsFOnly.cpl - a.macBound.tF, 1.0);
}

TEST(HierarchyShapes, ShortVectorKernelsShowLargeUnmodeledGap)
{
    // LFK2 (halving passes) and LFK6 (triangular sweeps) run far above
    // their MACS bounds; LFK1 runs close to it.
    double gap2 = analysisFor(2).tP / analysisFor(2).macs.cpl;
    double gap6 = analysisFor(6).tP / analysisFor(6).macs.cpl;
    double gap1 = analysisFor(1).tP / analysisFor(1).macs.cpl;
    EXPECT_GT(gap2, 1.3);
    EXPECT_GT(gap6, 1.5);
    EXPECT_LT(gap1, 1.05);
}

TEST(HierarchyShapes, PoorOverlapKernelsSitNearSumOfAx)
{
    // Paper section 4.3: for LFKs 4 and 6 the A and X processes
    // overlap poorly (t_p well above max(t_A, t_X)).
    for (int id : {4, 6}) {
        const KernelAnalysis &a = analysisFor(id);
        double lo = std::max(a.tA, a.tX);
        EXPECT_GT(a.tP, 1.15 * lo) << "LFK" << id;
    }
}

TEST(HierarchyShapes, WellOverlappedKernelsSitNearMax)
{
    for (int id : {1, 10, 12}) {
        const KernelAnalysis &a = analysisFor(id);
        double lo = std::max(a.tA, a.tX);
        EXPECT_LT(a.tP, 1.05 * lo) << "LFK" << id;
    }
}

TEST(HierarchyShapes, AverageMflopsOrderingMatchesPaper)
{
    // Table 4 bottom row: MFLOPS(MA) > MFLOPS(MAC) > MFLOPS(MACS) >
    // MFLOPS(actual).
    double ma = 0, mac = 0, macs = 0, act = 0;
    int n = 0;
    for (int id : lfk::lfkIds()) {
        const KernelAnalysis &a = analysisFor(id);
        ma += a.maCpf();
        mac += a.macCpf();
        macs += a.macsCpf();
        act += a.actualCpf();
        ++n;
    }
    EXPECT_LT(ma / n, mac / n + 1e-12);
    EXPECT_LT(mac / n, macs / n);
    EXPECT_LT(macs / n, act / n);
}

TEST(HierarchyShapes, AnalyzeKernelRequiresMetadata)
{
    KernelCase broken;
    broken.name = "broken";
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    EXPECT_THROW(analyzeKernel(broken, cfg), PanicError);
}

TEST(ContentionLevelShapes, OneCpuDegeneratesToMacs)
{
    const KernelAnalysis &a = analysisFor(1);
    ContentionLevel c =
        contentionLevel(a, 1, sim::WorkloadMix::Independent);
    EXPECT_DOUBLE_EQ(c.factor, 1.0);
    EXPECT_DOUBLE_EQ(c.macsC, a.macs.cpl);
    EXPECT_DOUBLE_EQ(c.contentionGap(), 0.0);
}

TEST(ContentionLevelShapes, BoundGrowsWithCpusAndMemoryShare)
{
    for (int id : lfk::lfkIds()) {
        const KernelAnalysis &a = analysisFor(id);
        SCOPED_TRACE(a.name);
        double prev = a.macs.cpl;
        for (int cpus = 2; cpus <= 4; ++cpus) {
            ContentionLevel c = contentionLevel(
                a, cpus, sim::WorkloadMix::Independent);
            // Exactly the memory component stretches.
            EXPECT_DOUBLE_EQ(c.macsC,
                             a.macs.cpl + (c.factor - 1.0) *
                                              a.macsMOnly.cpl);
            EXPECT_GE(c.macsC, prev);
            // Lock step never bounds above independent.
            ContentionLevel ls = contentionLevel(
                a, cpus, sim::WorkloadMix::LockStep);
            EXPECT_LE(ls.macsC, c.macsC);
            prev = c.macsC;
        }
    }
}

TEST(ContentionLevelShapes, GapAttributionAndRender)
{
    const KernelAnalysis &a = analysisFor(1);
    ContentionLevel c = contentionLevel(
        a, 4, sim::WorkloadMix::Independent, a.macs.cpl * 1.6);
    EXPECT_GT(c.contentionGap(), 0.0);
    EXPECT_DOUBLE_EQ(c.unmodeledGap(), c.tC - c.macsC);
    EXPECT_GT(c.coverage(), 0.0);
    EXPECT_LE(c.coverage(), 1.0 + 1e-9);

    std::string text = renderContentionLevel(c);
    EXPECT_NE(text.find("t_MACS^C"), std::string::npos);
    EXPECT_NE(text.find("4 CPUs"), std::string::npos);
    EXPECT_NE(text.find("independent"), std::string::npos);
    EXPECT_NE(text.find("unmodeled"), std::string::npos);

    // Bound-only levels render without a measured section.
    ContentionLevel bound_only =
        contentionLevel(a, 2, sim::WorkloadMix::LockStep);
    std::string bt = renderContentionLevel(bound_only);
    EXPECT_EQ(bt.find("unmodeled"), std::string::npos);
    EXPECT_NE(bt.find("lockstep"), std::string::npos);

    EXPECT_THROW(contentionLevelWithFactor(
                     a, 4, sim::WorkloadMix::Independent, 0.5),
                 PanicError);
}

} // namespace
} // namespace macs::model
