#!/usr/bin/env python3
"""Performance regression gate for the bench suite.

Compares a fresh bench JSON (produced with `--json`) against the
committed baseline under bench/baselines/ and fails when any GATED
metric regressed by more than the tolerance. Only the "gated" section
is enforced: those are RATIOS of two measurements taken on the same
host in the same run (warm vs single-shot, evented vs threaded), so
they are stable across machines of very different speed. The
"informative" section (absolute RPS, p99 in microseconds) is printed
for eyeballs but never gates — absolute numbers only mean something
relative to the host that produced them.

All gated metrics are higher-is-better; a run FAILS when
    current < baseline * (1 - tolerance).
Improvements never fail, but a large one prints a hint to refresh the
baseline so the gate keeps teeth.

Usage:
    scripts/perf_gate.py CURRENT.json BASELINE.json [--tolerance 0.15]
    scripts/perf_gate.py CURRENT.json BASELINE.json --update

`--update` rewrites BASELINE.json with CURRENT.json (after schema
validation) instead of gating; commit the result.
"""

import argparse
import json
import sys

SCHEMA_PREFIX = "macs-bench-"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    schema = data.get("schema")
    if not isinstance(schema, str) or not schema.startswith(SCHEMA_PREFIX):
        sys.exit(f"{path}: schema {schema!r}, want '{SCHEMA_PREFIX}*'")
    if not isinstance(data.get("gated"), dict) or not data["gated"]:
        sys.exit(f"{path}: missing or empty 'gated' section")
    return data


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="bench JSON from this run")
    ap.add_argument("baseline", help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the current run")
    args = ap.parse_args()

    current = load(args.current)

    if args.update:
        with open(args.current, "r", encoding="utf-8") as f:
            blob = f.read()
        with open(args.baseline, "w", encoding="utf-8") as f:
            f.write(blob)
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline = load(args.baseline)
    if current["schema"] != baseline["schema"]:
        sys.exit(f"schema mismatch: current {current['schema']!r} vs "
                 f"baseline {baseline['schema']!r}")
    floor_frac = 1.0 - args.tolerance
    failed = []

    print(f"perf gate: tolerance {args.tolerance:.0%}, "
          f"baseline {args.baseline}")
    for name, base in sorted(baseline["gated"].items()):
        cur = current["gated"].get(name)
        if cur is None:
            failed.append(name)
            print(f"  FAIL {name}: missing from current run")
            continue
        floor = base * floor_frac
        ok = cur >= floor
        verdict = "ok" if ok else "FAIL"
        print(f"  {verdict:4s} {name}: {cur:.3f} "
              f"(baseline {base:.3f}, floor {floor:.3f})")
        if not ok:
            failed.append(name)
        elif base > 0 and cur > base * 1.5:
            print(f"       note: {cur / base:.1f}x above baseline — "
                  f"consider --update to keep the gate tight")

    info_base = baseline.get("informative", {})
    info_cur = current.get("informative", {})
    if info_cur:
        print("  informative (not gated):")
        for name, cur in sorted(info_cur.items()):
            base = info_base.get(name)
            ref = f" (baseline {base:.1f})" if base is not None else ""
            print(f"       {name}: {cur:.1f}{ref}")

    if failed:
        print(f"perf gate FAILED: {', '.join(failed)} "
              f"regressed beyond {args.tolerance:.0%}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
