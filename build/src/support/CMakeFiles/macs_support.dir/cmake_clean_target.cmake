file(REMOVE_RECURSE
  "libmacs_support.a"
)
