/**
 * @file
 * Strip-length (VL) sweep: how the maximum vector length amortizes
 * per-chime fixed costs (bubbles, startup, refresh restarts). The
 * paper notes "run time no longer improves when VL drops below some
 * operation-specific threshold" — this quantifies the other side:
 * what the C-240 would lose with shorter vector registers, and what a
 * 256-element machine would gain.
 *
 * For each strip length, LFK1 and LFK7 are recompiled with that
 * vlMax (on a machine whose registers are that long) and both the
 * MACS bound and the measured time are reported.
 */

#include <cstdio>

#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "lfk/data.h"
#include "machine/machine_config.h"
#include "macs/macs_bound.h"
#include "sim/simulator.h"
#include "support/table.h"

namespace {

using namespace macs;

struct Row
{
    double macs_cpf;
    double measured_cpf;
};

Row
runLfk1(int vl)
{
    compiler::CompileOptions opt;
    opt.tripCount = 990;
    opt.vlMax = vl;
    opt.arrays = {{"x", 1024}, {"y", 1024}, {"zx", 1024}};
    auto res = compiler::compile(
        compiler::parseLoop(
            "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND"),
        opt);

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    cfg.maxVectorLength = vl;
    model::MacsResult macs =
        model::evaluateMacs(res.program.innerLoop(), cfg, vl);

    sim::Simulator s(cfg, res.program);
    s.memory().fillDoubles("y", lfk::testVector(1024, 101));
    s.memory().fillDoubles("zx", lfk::testVector(1024, 102));
    s.memory().fillDoubles("scalar_q", {1.5});
    s.memory().fillDoubles("scalar_r", {0.75});
    s.memory().fillDoubles("scalar_t", {0.35});
    double cycles = s.run().cycles;
    return {macs.cpl / 5.0, cycles / 990.0 / 5.0};
}

} // namespace

int
main()
{
    std::printf("=== Strip-length sweep: LFK1 on hypothetical vector "
                "register lengths ===\n\n");

    double base = runLfk1(128).measured_cpf;
    Table t2({"VL max", "strips", "t_MACS (CPF)", "measured (CPF)",
              "slowdown"});
    for (int vl : {16, 32, 64, 128, 256, 512}) {
        Row r = runLfk1(vl);
        t2.addRow({Table::num((long)vl),
                   Table::num((long)((990 + vl - 1) / vl)),
                   Table::num(r.macs_cpf), Table::num(r.measured_cpf),
                   Table::num(r.measured_cpf / base, 2)});
    }
    std::printf("%s\n", t2.render().c_str());

    std::printf(
        "Per-chime fixed costs (bubbles, the memory-refresh restart)\n"
        "scale as 1/VL: VL=16 pays ~37%% over VL=128, VL=32 ~8%%,\n"
        "and doubling the registers to 256 buys only ~1%% — the\n"
        "C-240's 128-element registers sit right at the knee, which is\n"
        "presumably why Convex built them that size.\n");
    return 0;
}
