# Empty compiler generated dependencies file for macs_calib.
# This may be replaced when dependencies are built.
