/**
 * @file
 * Process supervision for `macs serve --processes N`
 * (docs/ROBUSTNESS.md "Supervision hierarchy", docs/SERVER.md
 * "Multi-process serving").
 *
 * The service hierarchy mirrors the MACS modeling hierarchy: a
 * supervisor over worker processes over event-loop shards over
 * connections, each layer bounding the blast radius of the one below.
 * The Supervisor forks N workers (each binds the listen port with
 * SO_REUSEPORT and runs its own Server), then watches them:
 *
 *  - **Heartbeats**: each worker owns the write end of a pipe and
 *    beats every heartbeatIntervalMs; the supervisor read-drains the
 *    pipes and treats a silence longer than livenessTimeoutMs as a
 *    hang — the worker is SIGKILLed and restarted. The first beat is
 *    the readiness signal (the worker has bound its socket).
 *  - **Crash isolation**: SIGCHLD-free reaping (waitpid WNOHANG each
 *    tick) detects exits; any exit outside a drain — signal, nonzero,
 *    or even a stray clean exit — is a crash. The slot is restarted
 *    after an exponential backoff (RestartPolicy) until its restart
 *    budget is exhausted.
 *  - **Degraded mode**: an exhausted slot is abandoned. While other
 *    workers survive the fleet keeps serving with
 *    `macs_supervisor_degraded 1` exported from every worker's
 *    /metrics; the supervisor exits nonzero only when the LAST
 *    worker is gone (kExitServiceLost).
 *  - **Rolling drain**: a stop request (stopFlag, or the drainAfterMs
 *    test hook) forwards SIGTERM worker-by-worker, waiting for each
 *    to finish in-flight requests and flush its checkpoint journal
 *    before signaling the next, so the fleet serves until the final
 *    worker drains. Exit 0 when every drained worker exited 0.
 *
 * The Supervisor itself is SINGLE-THREADED and forks only from its
 * own loop, so fork() never races a lock; workers are free to spawn
 * threads. Worker code is injected as a WorkerMain callable — the CLI
 * passes the full serve stack, tests pass scripted stubs — running in
 * the child and finishing with _exit(rc).
 *
 * All fds the supervisor opens (heartbeat pipe ends) are closed by
 * the time run() returns: the open-fd count is back to baseline after
 * a drain, pinned by tests/supervisor_test.cc.
 */

#ifndef MACS_SUPERVISOR_SUPERVISOR_H
#define MACS_SUPERVISOR_SUPERVISOR_H

#include <chrono>
#include <csignal>
#include <functional>
#include <vector>

#include "supervisor/fleet_state.h"
#include "supervisor/restart_policy.h"

namespace macs::supervisor {

/** Everything a worker needs to run; passed to WorkerMain in the
 *  child process after fork. */
struct WorkerContext
{
    int slot = 0;        ///< worker slot index in [0, processes)
    int incarnation = 0; ///< 0 for the first fork of the slot
    int heartbeatFd = -1; ///< write end of the heartbeat pipe
    int heartbeatIntervalMs = 100;
    const FleetState *fleet = nullptr; ///< shared, read-only view
};

struct SupervisorOptions
{
    /** Worker process count, in [1, kMaxWorkers]. */
    int processes = 2;
    /** Advisory beat period handed to workers (ms). */
    int heartbeatIntervalMs = 100;
    /** Silence longer than this is a hang: SIGKILL + restart (ms). */
    int livenessTimeoutMs = 2000;
    /** Restart budget + backoff of crash/hang recovery. */
    RestartPolicy restart;
    /** Per-worker drain grace before SIGKILL (ms). */
    int drainTimeoutMs = 30000;
    /**
     * Stop flag (typically set from a SIGTERM/SIGINT handler): when
     * it becomes nonzero, run() performs the rolling drain and
     * returns. nullptr disables.
     */
    const volatile std::sig_atomic_t *stopFlag = nullptr;
    /** Test hook: start the rolling drain this long after run()
     *  begins (ms); 0 disables. */
    int drainAfterMs = 0;
    /** Log lifecycle events to stderr. */
    bool verbose = true;
};

class Supervisor
{
  public:
    /** run() result: clean rolling drain. */
    static constexpr int kExitClean = 0;
    /** run() result: every worker slot is dead — service lost. */
    static constexpr int kExitServiceLost = 4;

    /** Worker body; runs in the forked child, returns its exit code. */
    using WorkerMain = std::function<int(const WorkerContext &)>;

    /**
     * @param on_ready  called once, from run(), when every initial
     *                  worker has sent its first heartbeat (all
     *                  listen sockets bound). May be nullptr.
     */
    Supervisor(SupervisorOptions options, WorkerMain worker_main,
               std::function<void()> on_ready = nullptr);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /**
     * Fork the fleet and supervise until a stop request (rolling
     * drain, returns kExitClean or kExitServiceLost if a drained
     * worker failed) or until every slot is dead (kExitServiceLost).
     */
    int run();

    /** Shared state (read-only for callers; tests assert on it). */
    const FleetState &fleet() const { return *fleet_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Slot
    {
        pid_t pid = -1;
        int pipeFd = -1; ///< read end of the heartbeat pipe
        int restarts = 0;
        int nextIncarnation = 0;
        bool ready = false;
        bool abandoned = false;
        bool hangKill = false; ///< SIGKILL sent for missed heartbeat
        Clock::time_point lastBeat;
        Clock::time_point restartAt; ///< valid in Backoff state
    };

    void spawn(int index);
    void drainHeartbeats();
    void reapExits();
    void checkLiveness(Clock::time_point now);
    void restartDue(Clock::time_point now);
    void onWorkerDeath(int index, int status);
    int rollingDrain();
    void closeSlotPipe(Slot &slot);
    void setState(int index, WorkerState state);
    bool allDead() const;
    bool allReady() const;

    SupervisorOptions options_;
    WorkerMain workerMain_;
    std::function<void()> onReady_;
    FleetState *fleet_ = nullptr;
    std::vector<Slot> slots_;
    bool readySignaled_ = false;
};

} // namespace macs::supervisor

#endif // MACS_SUPERVISOR_SUPERVISOR_H
