/**
 * @file
 * A/X transformation tests (paper section 3.6): the access-only and
 * execute-only codes remove exactly one instruction class, preserve
 * control flow and labels, and still run to completion on every LFK.
 */

#include <gtest/gtest.h>

#include "isa/parser.h"
#include "lfk/kernels.h"
#include "macs/ax_transform.h"
#include "sim/simulator.h"

namespace macs::model {
namespace {

TEST(AxTransform, AccessOnlyRemovesVectorFp)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    isa::Program a = makeAProcess(p);
    for (const auto &in : a.instrs())
        EXPECT_FALSE(in.isVector() && !in.isVectorMemory())
            << in.toString();
    // All 4 memory ops and all 5 scalar loop instructions retained.
    int mem = 0, scalar = 0;
    for (const auto &in : a.instrs()) {
        if (in.isVectorMemory())
            ++mem;
        if (!in.isVector())
            ++scalar;
    }
    EXPECT_EQ(mem, 4);
    EXPECT_EQ(scalar, 5);
}

TEST(AxTransform, ExecuteOnlyRemovesVectorMemory)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    isa::Program x = makeXProcess(p);
    for (const auto &in : x.instrs())
        EXPECT_FALSE(in.isVectorMemory()) << in.toString();
    int fp = 0;
    for (const auto &in : x.instrs())
        if (in.isVectorFloat())
            ++fp;
    EXPECT_EQ(fp, 5);
}

TEST(AxTransform, LabelsReattachAndValidate)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    isa::Program a = makeAProcess(p);
    EXPECT_TRUE(a.hasLabel("L7"));
    // The branch still targets an existing instruction.
    a.validate();
    // Loop structure intact.
    auto body = a.innerLoop();
    EXPECT_GT(body.size(), 0u);
}

TEST(AxTransform, DataSymbolsPreserved)
{
    isa::Program p = isa::assemble(lfk::lfk1PaperListing());
    isa::Program x = makeXProcess(p);
    EXPECT_TRUE(x.hasDataSymbol("x"));
    EXPECT_TRUE(x.hasDataSymbol("y"));
    EXPECT_TRUE(x.hasDataSymbol("zx"));
}

TEST(AxTransform, LabelAtRemovedInstructionMovesForward)
{
    isa::Program p = isa::assemble(R"(
.comm x,256
    mov #64,s6
    mov s6,VL
TOP: add.d v0,v1,v2
    ld.l x(a5),v3
    nop
)");
    isa::Program a = makeAProcess(p);
    // TOP pointed at the removed add; it must now point at the load.
    EXPECT_TRUE(a.hasLabel("TOP"));
    EXPECT_EQ(a.instrs()[a.labelIndex("TOP")].op, isa::Opcode::VLd);
}

TEST(AxTransform, TrailingLabelSurvives)
{
    isa::Program p = isa::assemble(R"(
    nop
END:
    nop
)");
    isa::Program a = makeAProcess(p);
    EXPECT_TRUE(a.hasLabel("END"));
}

class AxKernels : public ::testing::TestWithParam<int>
{
};

TEST_P(AxKernels, BothProcessesRunToCompletion)
{
    lfk::Kernel k = lfk::makeKernel(GetParam());
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();

    isa::Program a = makeAProcess(k.program);
    isa::Program x = makeXProcess(k.program);

    sim::Simulator sa(cfg, a);
    k.setup(sa);
    sim::RunStats ra = sa.run();
    EXPECT_GT(ra.cycles, 0.0);
    EXPECT_EQ(ra.flops, 0u) << "A-process must not execute vector FP";

    sim::Simulator sx(cfg, x);
    k.setup(sx);
    sim::RunStats rx = sx.run();
    EXPECT_GT(rx.cycles, 0.0);
    EXPECT_EQ(rx.memoryElements, 0u)
        << "X-process must not access memory with vector ops";
}

TEST_P(AxKernels, ControlFlowIterationCountsUnchanged)
{
    lfk::Kernel k = lfk::makeKernel(GetParam());
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();

    sim::Simulator sp(cfg, k.program);
    k.setup(sp);
    sim::RunStats full = sp.run();

    isa::Program a = makeAProcess(k.program);
    sim::Simulator sa(cfg, a);
    k.setup(sa);
    sim::RunStats ra = sa.run();

    // Scalar control flow is untouched, so both executions take every
    // branch the same number of times (paper: "control flow is
    // unaffected").
    EXPECT_EQ(full.branchesTaken, ra.branchesTaken);
}

INSTANTIATE_TEST_SUITE_P(AllLfk, AxKernels,
                         ::testing::ValuesIn(lfk::lfkIds()),
                         [](const auto &info) {
                             return "LFK" + std::to_string(info.param);
                         });

} // namespace
} // namespace macs::model
