/**
 * @file
 * What-if architecture study — the use the paper's conclusion proposes
 * for the MACS hierarchy ("pinpoint ... what improvements might be
 * most effective in the application, compiler, or machine").
 *
 * Evaluates LFK1 and LFK7 on hypothetical C-240 variants and shows
 * where each machine change moves the bounds versus the delivered
 * time: a second memory-port-equivalent (modeled as halved bank busy
 * time), zero tailgating bubbles, a faster multiplier, no refresh,
 * and a Cray-2-style machine without chaining.
 */

#include <cstdio>
#include <vector>

#include "lfk/kernels.h"
#include "macs/hierarchy.h"
#include "machine/machine_config.h"
#include "support/table.h"

namespace {

struct Variant
{
    const char *name;
    macs::machine::MachineConfig config;
};

std::vector<Variant>
variants()
{
    using macs::machine::MachineConfig;
    std::vector<Variant> out;
    out.push_back({"baseline C-240", MachineConfig::convexC240()});

    MachineConfig fast_banks = MachineConfig::convexC240();
    fast_banks.memory.bankBusyCycles = 4;
    out.push_back({"bank busy 8 -> 4", fast_banks});

    out.push_back({"no bubbles", MachineConfig::noBubbles()});

    MachineConfig fast_mul = MachineConfig::convexC240();
    fast_mul.setTiming(macs::isa::Opcode::VMul, {2, 8, 1.0, 1});
    out.push_back({"mul Y 12 -> 8", fast_mul});

    out.push_back({"no refresh", MachineConfig::noRefresh()});
    out.push_back({"no chaining (Cray-2-ish)",
                   MachineConfig::noChaining()});
    return out;
}

} // namespace

int
main()
{
    using namespace macs;

    for (int id : {1, 7}) {
        lfk::Kernel k = lfk::makeKernel(id);
        std::printf("=== %s under machine variants ===\n\n",
                    k.name.c_str());
        Table t({"variant", "t_MA", "t_MAC", "t_MACS", "t_p (CPF)",
                 "speedup"});
        double base_cpf = 0.0;
        for (const Variant &v : variants()) {
            model::KernelAnalysis a =
                model::analyzeKernel(lfk::toKernelCase(k), v.config);
            if (base_cpf == 0.0)
                base_cpf = a.actualCpf();
            t.addRow({v.name, Table::num(a.maCpf()),
                      Table::num(a.macCpf()), Table::num(a.macsCpf()),
                      Table::num(a.actualCpf()),
                      Table::num(base_cpf / a.actualCpf(), 2)});
        }
        std::printf("%s\n", t.render().c_str());
    }

    std::printf(
        "Reading the table the way the paper's section 5 intends:\n"
        "LFK1 is memory-bound, so the FP-side what-ifs move nothing\n"
        "while losing chaining is catastrophic; removing bubbles or\n"
        "refresh buys only the ~1-3%% their gaps predicted. The right\n"
        "lever for this workload is the compiler (the MA<-MAC gap),\n"
        "not the function units.\n");
    return 0;
}
