file(REMOVE_RECURSE
  "../bench/vectorization_speedup"
  "../bench/vectorization_speedup.pdb"
  "CMakeFiles/vectorization_speedup.dir/vectorization_speedup.cc.o"
  "CMakeFiles/vectorization_speedup.dir/vectorization_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorization_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
