#include "compiler/scheduler.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string>

#include "support/logging.h"

namespace macs::compiler {

namespace {

using isa::Instruction;
using isa::Reg;
using isa::RegClass;

int
pipeSlot(isa::Pipe p)
{
    switch (p) {
      case isa::Pipe::LoadStore:
        return 0;
      case isa::Pipe::Add:
        return 1;
      case isa::Pipe::Multiply:
        return 2;
      case isa::Pipe::None:
        break;
    }
    panic("pipeSlot on scalar instruction");
}

/** Unique id of a scalar/address register for dependence tracking. */
int
scalarId(const Reg &r)
{
    switch (r.cls) {
      case RegClass::Scalar:
        return r.index;
      case RegClass::Address:
        return isa::kNumScalarRegs + r.index;
      case RegClass::Vl:
        return isa::kNumScalarRegs + isa::kNumAddressRegs;
      default:
        return -1;
    }
}

/** One schedulable unit: a vector instruction plus glued scalar ops. */
struct Node
{
    std::vector<Instruction> glue; ///< scalar loads/moves emitted first
    Instruction instr;             ///< the vector instruction
    bool hasScalarMemGlue = false;

    std::set<int> vReads, vWrites;   ///< vector register indices
    std::set<int> sReads, sWrites;   ///< scalar/address ids
    std::set<std::string> memReads;  ///< symbols loaded
    std::set<std::string> memWrites; ///< symbols stored

    std::vector<size_t> succs;
    std::vector<size_t> rawPreds;   ///< chaining-compatible preds
    std::vector<size_t> hardPreds;  ///< WAR/WAW/memory preds
    int priority = 0;               ///< critical-path length
};

void
collectUses(Node &n)
{
    auto scanInstr = [&](const Instruction &in, bool glue_level) {
        for (const Reg &r : in.vectorReads())
            n.vReads.insert(r.index);
        for (const Reg &r : in.vectorWrites())
            n.vWrites.insert(r.index);
        for (const Reg &r : in.scalarReads()) {
            int id = scalarId(r);
            if (id >= 0)
                n.sReads.insert(id);
        }
        Reg w = in.scalarWrite();
        int wid = scalarId(w);
        if (wid >= 0)
            n.sWrites.insert(wid);
        if (!in.mem.symbol.empty()) {
            bool is_store = in.op == isa::Opcode::VSt ||
                            in.op == isa::Opcode::VStS ||
                            in.op == isa::Opcode::SSt;
            if (is_store)
                n.memWrites.insert(in.mem.symbol);
            else
                n.memReads.insert(in.mem.symbol);
        }
        if (glue_level && in.isScalarMemory())
            n.hasScalarMemGlue = true;
    };
    for (const auto &g : n.glue)
        scanInstr(g, true);
    scanInstr(n.instr, false);
    // A scalar produced by this node's own glue and consumed by its
    // vector instruction is internal: drop it from the read set so it
    // does not create self-dependences, but keep it in writes so other
    // nodes reusing the scratch register are ordered.
    for (const auto &g : n.glue) {
        int wid = scalarId(g.scalarWrite());
        if (wid >= 0)
            n.sReads.erase(wid);
    }
}

} // namespace

std::vector<Instruction>
scheduleBody(std::span<const Instruction> body,
             const machine::ChainingConfig &rules)
{
    // ---- 1. group instructions into nodes -------------------------------
    std::vector<Node> nodes;
    std::vector<Instruction> pending_glue;
    for (const auto &in : body) {
        if (!in.isVector()) {
            pending_glue.push_back(in);
            continue;
        }
        Node n;
        n.glue = std::move(pending_glue);
        pending_glue.clear();
        n.instr = in;
        collectUses(n);
        nodes.push_back(std::move(n));
    }
    if (!pending_glue.empty()) {
        // Trailing scalar code with no vector consumer: bail out and
        // keep the original order (the caller passed loop control?).
        std::vector<Instruction> out(body.begin(), body.end());
        return out;
    }
    if (nodes.size() <= 1) {
        std::vector<Instruction> out(body.begin(), body.end());
        return out;
    }

    // ---- 2. dependence edges --------------------------------------------
    auto intersects = [](const auto &a, const auto &b) {
        for (const auto &x : a)
            if (b.count(x))
                return true;
        return false;
    };

    size_t n = nodes.size();
    for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < j; ++i) {
            const Node &a = nodes[i];
            const Node &b = nodes[j];
            bool raw = intersects(a.vWrites, b.vReads) ||
                       intersects(a.sWrites, b.sReads);
            bool war = intersects(a.vReads, b.vWrites) ||
                       intersects(a.sReads, b.sWrites);
            bool waw = intersects(a.vWrites, b.vWrites) ||
                       intersects(a.sWrites, b.sWrites);
            // Conservative same-symbol memory ordering.
            bool memdep = intersects(a.memWrites, b.memReads) ||
                          intersects(a.memReads, b.memWrites) ||
                          intersects(a.memWrites, b.memWrites);
            if (raw) {
                nodes[j].rawPreds.push_back(i);
            }
            if (war || waw || memdep) {
                nodes[j].hardPreds.push_back(i);
            }
            if (raw || war || waw || memdep)
                nodes[i].succs.push_back(j);
        }
    }

    // ---- 3. critical-path priorities -------------------------------------
    for (size_t i = n; i-- > 0;) {
        int best = 0;
        for (size_t s : nodes[i].succs)
            best = std::max(best, nodes[s].priority);
        nodes[i].priority = best + 1;
    }

    // ---- 4. greedy chime packing -----------------------------------------
    std::vector<char> placed(n, 0);
    std::vector<size_t> order;
    std::set<size_t> current_chime;
    std::array<bool, 3> pipe_used{};
    std::array<int, isa::kNumVectorPairs> pair_reads{};
    std::array<int, isa::kNumVectorPairs> pair_writes{};
    bool chime_has_vecmem = false;
    bool chime_has_scalar_mem = false;

    auto resetChime = [&] {
        current_chime.clear();
        pipe_used.fill(false);
        pair_reads.fill(0);
        pair_writes.fill(0);
        chime_has_vecmem = false;
        chime_has_scalar_mem = false;
    };

    auto eligible = [&](size_t i) {
        const Node &nd = nodes[i];
        if (placed[i])
            return false;
        // Hard predecessors must be in earlier chimes.
        for (size_t p : nd.hardPreds)
            if (!placed[p] || current_chime.count(p))
                return false;
        // RAW predecessors may be in the current chime (chaining) when
        // chaining is enabled; otherwise they must be in earlier chimes.
        for (size_t p : nd.rawPreds) {
            if (!placed[p])
                return false;
            if (current_chime.count(p) && !rules.chainingEnabled)
                return false;
        }
        if (pipe_used[pipeSlot(nd.instr.pipe())])
            return false;
        if (rules.scalarMemSplitsChimes) {
            if (nd.hasScalarMemGlue &&
                (chime_has_vecmem || !current_chime.empty()))
                return false; // scalar-mem glue only opens a chime
            if (nd.instr.isVectorMemory() && chime_has_scalar_mem)
                return false;
        }
        if (rules.enforcePairLimits) {
            auto reads = pair_reads;
            auto writes = pair_writes;
            for (const Reg &r : nd.instr.vectorReads())
                ++reads[r.pair()];
            for (const Reg &r : nd.instr.vectorWrites())
                ++writes[r.pair()];
            for (int p = 0; p < isa::kNumVectorPairs; ++p)
                if (reads[p] > rules.maxReadsPerPair ||
                    writes[p] > rules.maxWritesPerPair)
                    return false;
        }
        return true;
    };

    size_t remaining = n;
    resetChime();
    int guard = 0;
    while (remaining > 0) {
        MACS_ASSERT(++guard < 100000, "scheduler did not converge");
        // Pick the best eligible node: memory ops first while the LS
        // slot is open (the workload is memory bound), then by
        // critical-path priority.
        size_t best = n;
        for (size_t i = 0; i < n; ++i) {
            if (!eligible(i))
                continue;
            if (best == n) {
                best = i;
                continue;
            }
            bool i_mem = nodes[i].instr.isVectorMemory();
            bool b_mem = nodes[best].instr.isVectorMemory();
            if (i_mem != b_mem) {
                if (i_mem)
                    best = i;
                continue;
            }
            if (nodes[i].priority > nodes[best].priority)
                best = i;
        }
        if (best == n) {
            // Nothing fits: close the chime.
            MACS_ASSERT(!current_chime.empty(),
                        "no eligible node for an empty chime "
                        "(dependence cycle?)");
            resetChime();
            continue;
        }

        Node &nd = nodes[best];
        placed[best] = 1;
        --remaining;
        order.push_back(best);
        current_chime.insert(best);
        pipe_used[pipeSlot(nd.instr.pipe())] = true;
        if (nd.instr.isVectorMemory())
            chime_has_vecmem = true;
        if (nd.hasScalarMemGlue)
            chime_has_scalar_mem = true;
        for (const Reg &r : nd.instr.vectorReads())
            ++pair_reads[r.pair()];
        for (const Reg &r : nd.instr.vectorWrites())
            ++pair_writes[r.pair()];
    }

    // ---- 5. emit ------------------------------------------------------------
    std::vector<Instruction> out;
    out.reserve(body.size());
    for (size_t idx : order) {
        for (const auto &g : nodes[idx].glue)
            out.push_back(g);
        out.push_back(nodes[idx].instr);
    }
    return out;
}

std::vector<Instruction>
scheduleScalarBody(std::span<const Instruction> body,
                   const machine::ScalarTiming &timing)
{
    for (const auto &in : body)
        if (in.isVector())
            return {body.begin(), body.end()};
    size_t n = body.size();
    if (n <= 1)
        return {body.begin(), body.end()};

    // Register and memory use/def sets per instruction.
    struct SNode
    {
        std::set<int> reads, writes;     // scalar/address reg ids
        std::set<std::string> memReads, memWrites;
        std::vector<size_t> preds, succs;
        int latency = 1;
        int priority = 0;
    };
    auto reg_id = [](const Reg &r) { return scalarId(r); };

    std::vector<SNode> nodes(n);
    for (size_t i = 0; i < n; ++i) {
        const Instruction &in = body[i];
        SNode &nd = nodes[i];
        for (const Reg &r : in.scalarReads()) {
            int id = reg_id(r);
            if (id >= 0)
                nd.reads.insert(id);
        }
        int w = reg_id(in.scalarWrite());
        if (w >= 0)
            nd.writes.insert(w);
        if (!in.mem.symbol.empty()) {
            bool store = in.op == isa::Opcode::SSt;
            (store ? nd.memWrites : nd.memReads).insert(in.mem.symbol);
        }
        if (in.op == isa::Opcode::SLd)
            nd.latency = timing.loadLatency;
        else if (isa::isScalarFp(in.op))
            nd.latency = in.op == isa::Opcode::SFDiv
                             ? timing.fpDivLatency
                             : timing.fpLatency;
    }

    auto meets = [](const auto &a, const auto &b) {
        for (const auto &x : a)
            if (b.count(x))
                return true;
        return false;
    };
    for (size_t j = 0; j < n; ++j) {
        for (size_t i = 0; i < j; ++i) {
            bool dep = meets(nodes[i].writes, nodes[j].reads) ||
                       meets(nodes[i].reads, nodes[j].writes) ||
                       meets(nodes[i].writes, nodes[j].writes) ||
                       meets(nodes[i].memWrites, nodes[j].memReads) ||
                       meets(nodes[i].memReads, nodes[j].memWrites) ||
                       meets(nodes[i].memWrites, nodes[j].memWrites);
            if (dep) {
                nodes[j].preds.push_back(i);
                nodes[i].succs.push_back(j);
            }
        }
    }
    for (size_t i = n; i-- > 0;) {
        int best = 0;
        for (size_t s : nodes[i].succs)
            best = std::max(best, nodes[s].priority);
        nodes[i].priority = best + nodes[i].latency;
    }

    // Greedy list scheduling: simulated issue clock; a node is ready
    // when its operands' producing latencies have elapsed. Pick the
    // ready node with the highest critical path; when none is ready,
    // the one that becomes ready soonest.
    std::vector<char> placed(n, 0);
    std::vector<double> done_at(n, 0.0);
    std::vector<size_t> order;
    double clock = 0.0;
    for (size_t step = 0; step < n; ++step) {
        size_t best = n;
        double best_ready = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (placed[i])
                continue;
            bool preds_placed = true;
            double ready = 0.0;
            for (size_t p : nodes[i].preds) {
                if (!placed[p]) {
                    preds_placed = false;
                    break;
                }
                ready = std::max(ready, done_at[p]);
            }
            if (!preds_placed)
                continue;
            bool ready_now = ready <= clock;
            if (best == n) {
                best = i;
                best_ready = ready;
                continue;
            }
            bool best_now = best_ready <= clock;
            if (ready_now != best_now) {
                if (ready_now) {
                    best = i;
                    best_ready = ready;
                }
                continue;
            }
            if (ready_now
                    ? nodes[i].priority > nodes[best].priority
                    : ready < best_ready) {
                best = i;
                best_ready = ready;
            }
        }
        MACS_ASSERT(best < n, "scalar scheduler found no ready node");
        clock = std::max(clock + 1.0, best_ready + 1.0);
        done_at[best] = std::max(clock, best_ready) + nodes[best].latency;
        placed[best] = 1;
        order.push_back(best);
    }

    std::vector<Instruction> out;
    out.reserve(n);
    for (size_t idx : order)
        out.push_back(body[idx]);
    return out;
}

} // namespace macs::compiler
