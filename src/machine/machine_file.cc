#include "machine/machine_file.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "isa/opcode.h"
#include "support/strings.h"

namespace macs::machine {

namespace {

/**
 * Recovering line-oriented parser. One instance per parse; every
 * setter records errors against the current line/column and keeps
 * going so a single run reports all problems in the file.
 */
class Parser
{
  public:
    Parser(std::string_view text, const std::string &file,
           MachineFile &out, Diagnostics &diags)
        : text_(text), file_(file), out_(out), diags_(diags)
    {
        diags_.setSource(text, file);
    }

    bool run();

  private:
    // --- line-level machinery -----------------------------------
    void parseLine(std::string_view line);
    void parseSectionHeader(std::string_view line);
    void parseKeyValue(std::string_view line);
    void dispatch(const std::string &key, std::string_view value);

    // --- value parsers (all record errors and keep going) --------
    bool parseBoolValue(std::string_view value, bool &out);
    bool parseIntValue(std::string_view value, long lo, long hi,
                       int &out);
    bool parseDoubleValue(std::string_view value, double lo,
                          double hi, double &out);
    void parseTimingRow(const std::string &mnemonic,
                        std::string_view value);
    void parseName(std::string_view value);

    void error(std::string msg)
    {
        diags_.error(SourceLoc{lineNo_, col_}, std::move(msg));
    }

    std::string_view text_;
    const std::string &file_;
    MachineFile &out_;
    Diagnostics &diags_;

    MachineFile mf_;       ///< staging copy; committed only when clean
    std::string_view line_; ///< current raw line (column reference)
    size_t lineNo_ = 0;    ///< 1-based current line
    size_t col_ = 1;       ///< 1-based column for the next diagnostic
    size_t keyCol_ = 1;    ///< column of the current key
    std::string section_;  ///< current section name ("" before any)
    bool skipSection_ = false; ///< inside an unknown section
    std::set<std::string> seenSections_;
    std::set<std::string> seenKeys_; ///< "section.key" duplicates
};

const char *const kSections[] = {"machine",      "memory",
                                 "chaining",     "scalar",
                                 "scalar-cache", "refresh-model",
                                 "timing"};

bool
knownSection(const std::string &name)
{
    for (const char *s : kSections)
        if (name == s)
            return true;
    return false;
}

/** 1-based column of @p sub inside @p line (both must alias). */
size_t
columnOf(std::string_view line, std::string_view sub)
{
    if (sub.empty() || sub.data() < line.data() ||
        sub.data() > line.data() + line.size())
        return 1;
    return static_cast<size_t>(sub.data() - line.data()) + 1;
}

bool
Parser::run()
{
    size_t start = 0;
    size_t before = diags_.errorCount();
    while (start <= text_.size()) {
        size_t eol = text_.find('\n', start);
        std::string_view line =
            eol == std::string_view::npos
                ? text_.substr(start)
                : text_.substr(start, eol - start);
        ++lineNo_;
        if (!diags_.atErrorLimit())
            parseLine(line);
        if (eol == std::string_view::npos)
            break;
        start = eol + 1;
    }
    if (diags_.errorCount() != before)
        return false;
    if (mf_.name.empty())
        mf_.name = machineNameFromPath(file_);
    out_ = std::move(mf_);
    return true;
}

void
Parser::parseLine(std::string_view raw)
{
    // '#' starts a comment anywhere on the line.
    line_ = raw;
    std::string_view body = trim(raw.substr(0, raw.find('#')));
    if (body.empty())
        return;
    col_ = columnOf(line_, body);
    if (body.front() == '[') {
        parseSectionHeader(body);
        return;
    }
    parseKeyValue(body);
}

void
Parser::parseSectionHeader(std::string_view body)
{
    if (body.back() != ']') {
        error("unterminated section header (expected ']')");
        skipSection_ = true;
        section_.clear();
        return;
    }
    std::string name(trim(body.substr(1, body.size() - 2)));
    if (!knownSection(name)) {
        std::ostringstream known;
        for (const char *s : kSections)
            known << (known.tellp() > 0 ? ", " : "") << s;
        error("unknown section '[" + name + "]' (known: " +
              known.str() + ")");
        skipSection_ = true;
        section_.clear();
        return;
    }
    if (!seenSections_.insert(name).second)
        error("duplicate section '[" + name + "]'");
    section_ = name;
    skipSection_ = false;
}

void
Parser::parseKeyValue(std::string_view body)
{
    size_t eq = body.find('=');
    if (eq == std::string_view::npos) {
        error("expected 'key = value' or '[section]'");
        return;
    }
    std::string key(trim(body.substr(0, eq)));
    std::string_view value = trim(body.substr(eq + 1));
    keyCol_ = columnOf(line_, body);
    if (key.empty()) {
        error("missing key before '='");
        return;
    }
    if (skipSection_)
        return; // the unknown-section header was already reported
    if (section_.empty()) {
        error("key '" + key + "' before any [section] header");
        return;
    }
    if (value.empty()) {
        error("missing value for key '" + key + "'");
        return;
    }
    // [timing] rows are keyed on mnemonics, not fixed key names, so
    // duplicate tracking composes the section in either case.
    if (!seenKeys_.insert(section_ + "." + key).second) {
        error("duplicate key '" + key + "' in section [" + section_ +
              "]");
        return;
    }
    col_ = columnOf(line_, value);
    dispatch(key, value);
}

void
Parser::dispatch(const std::string &key, std::string_view value)
{
    MachineConfig &c = mf_.config;
    const std::string &s = section_;
    if (s == "machine") {
        if (key == "name")
            return parseName(value);
        if (key == "description") {
            mf_.description = std::string(value);
            return;
        }
        if (key == "clock-mhz") {
            parseDoubleValue(value, 1e-3, 1e6, c.clockMhz);
            return;
        }
        if (key == "max-vector-length") {
            parseIntValue(value, 1, 4096, c.maxVectorLength);
            return;
        }
        if (key == "cpus") {
            parseIntValue(value, 1, 64, c.cpus);
            return;
        }
    } else if (s == "memory") {
        if (key == "banks")
            return (void)parseIntValue(value, 1, 65536,
                                       c.memory.banks);
        if (key == "bank-busy-cycles")
            return (void)parseIntValue(value, 1, 1 << 20,
                                       c.memory.bankBusyCycles);
        if (key == "word-bytes")
            return (void)parseIntValue(value, 1, 4096,
                                       c.memory.wordBytes);
        if (key == "refresh-period-cycles")
            return (void)parseIntValue(value, 1, 1 << 30,
                                       c.memory.refreshPeriodCycles);
        if (key == "refresh-duration-cycles")
            return (void)parseIntValue(value, 0, 1 << 30,
                                       c.memory.refreshDurationCycles);
        if (key == "refresh-enabled")
            return (void)parseBoolValue(value,
                                        c.memory.refreshEnabled);
        if (key == "arbitration-restart-cycles")
            return (void)parseIntValue(
                value, 0, 1 << 20, c.memory.arbitrationRestartCycles);
    } else if (s == "chaining") {
        if (key == "enabled")
            return (void)parseBoolValue(value,
                                        c.chaining.chainingEnabled);
        if (key == "max-reads-per-pair")
            return (void)parseIntValue(value, 0, 64,
                                       c.chaining.maxReadsPerPair);
        if (key == "max-writes-per-pair")
            return (void)parseIntValue(value, 0, 64,
                                       c.chaining.maxWritesPerPair);
        if (key == "enforce-pair-limits")
            return (void)parseBoolValue(value,
                                        c.chaining.enforcePairLimits);
        if (key == "scalar-mem-splits-chimes")
            return (void)parseBoolValue(
                value, c.chaining.scalarMemSplitsChimes);
        if (key == "fp-add-mul-shared")
            return (void)parseBoolValue(value,
                                        c.chaining.fpAddMulShared);
    } else if (s == "scalar") {
        ScalarTiming &t = c.scalar;
        if (key == "issue-cycles")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.issueCycles);
        if (key == "alu-latency")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.aluLatency);
        if (key == "load-latency")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.loadLatency);
        if (key == "load-miss-latency")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.loadMissLatency);
        if (key == "store-cycles")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.storeCycles);
        if (key == "branch-resolve-cycles")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.branchResolveCycles);
        if (key == "vector-issue-cycles")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.vectorIssueCycles);
        if (key == "fp-latency")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.fpLatency);
        if (key == "fp-div-latency")
            return (void)parseIntValue(value, 0, 1 << 20,
                                       t.fpDivLatency);
    } else if (s == "scalar-cache") {
        if (key == "enabled")
            return (void)parseBoolValue(value, c.scalarCache.enabled);
        if (key == "lines")
            return (void)parseIntValue(value, 1, 1 << 20,
                                       c.scalarCache.lines);
        if (key == "line-words")
            return (void)parseIntValue(value, 1, 4096,
                                       c.scalarCache.lineWords);
    } else if (s == "refresh-model") {
        if (key == "penalty-factor")
            return (void)parseDoubleValue(value, 1.0, 100.0,
                                          c.refreshPenaltyFactor);
        if (key == "run-threshold-cycles")
            return (void)parseDoubleValue(
                value, 1.0, 1e12, c.refreshRunThresholdCycles);
    } else if (s == "timing") {
        return parseTimingRow(key, value);
    }
    error("unknown key '" + key + "' in section [" + s + "]");
}

bool
Parser::parseBoolValue(std::string_view value, bool &out)
{
    std::string v = toLower(value);
    if (v == "true" || v == "1" || v == "on") {
        out = true;
        return true;
    }
    if (v == "false" || v == "0" || v == "off") {
        out = false;
        return true;
    }
    error("expected a boolean (true/false/1/0/on/off), got '" +
          std::string(value) + "'");
    return false;
}

bool
Parser::parseIntValue(std::string_view value, long lo, long hi,
                      int &out)
{
    long v = 0;
    if (!parseInt(value, v)) {
        error("expected an integer, got '" + std::string(value) + "'");
        return false;
    }
    if (v < lo || v > hi) {
        error(format("value %ld out of range [%ld, %ld]", v, lo, hi));
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

bool
Parser::parseDoubleValue(std::string_view value, double lo, double hi,
                         double &out)
{
    double v = 0;
    if (!parseDouble(value, v)) {
        error("expected a number, got '" + std::string(value) + "'");
        return false;
    }
    if (v < lo || v > hi) {
        error(format("value %g out of range [%g, %g]", v, lo, hi));
        return false;
    }
    out = v;
    return true;
}

void
Parser::parseTimingRow(const std::string &mnemonic,
                       std::string_view value)
{
    auto op = isa::opcodeFromMnemonic(mnemonic);
    if (!op || !isa::isVectorOp(*op)) {
        col_ = keyCol_; // point at the mnemonic, not the numbers
        error("'" + mnemonic + "' is not a vector opcode mnemonic");
        return;
    }
    std::vector<std::string> fields = splitWhitespace(value);
    if (fields.size() != 4) {
        error(format("expected 4 fields 'X Y Z B', got %zu",
                     fields.size()));
        return;
    }
    VectorTiming t;
    double *slots[4] = {&t.x, &t.y, &t.z, &t.bubble};
    const char *names[4] = {"X", "Y", "Z", "B"};
    bool ok = true;
    for (int i = 0; i < 4; ++i) {
        double v = 0;
        if (!parseDouble(fields[i], v)) {
            error(format("timing field %s: expected a number, got "
                         "'%s'",
                         names[i], fields[i].c_str()));
            ok = false;
            continue;
        }
        // Z must be positive (cycles per element); X/Y/B may be 0.
        double lo = i == 2 ? 1e-9 : 0.0;
        if (v < lo || v > 1e9) {
            error(format("timing field %s: value %g out of range",
                         names[i], v));
            ok = false;
            continue;
        }
        *slots[i] = v;
    }
    if (ok)
        mf_.config.setTiming(*op, t);
}

void
Parser::parseName(std::string_view value)
{
    for (char ch : value) {
        bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                  (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                  ch == '-';
        if (!ok) {
            error("machine name may only contain [a-zA-Z0-9._-], got '" +
                  std::string(value) + "'");
            return;
        }
    }
    mf_.name = std::string(value);
}

} // namespace

bool
parseMachineDescription(std::string_view text, const std::string &file,
                        MachineFile &out, Diagnostics &diags)
{
    Parser parser(text, file, out, diags);
    return parser.run();
}

std::string
machineNameFromPath(const std::string &path)
{
    std::string stem = std::filesystem::path(path).stem().string();
    return stem.empty() ? "machine" : stem;
}

bool
loadMachineFile(const std::string &path, MachineFile &out,
                Diagnostics &diags)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        diags.error("cannot open machine file '" + path + "'");
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        diags.error("read error on machine file '" + path + "'");
        return false;
    }
    return parseMachineDescription(buf.str(), path, out, diags);
}

std::vector<std::string>
listMachineFiles(const std::string &dir, Diagnostics &diags)
{
    namespace fs = std::filesystem;
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".machine")
            paths.push_back(entry.path().string());
    }
    if (ec) {
        diags.error("cannot list machine directory '" + dir +
                    "': " + ec.message());
        return {};
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty())
        diags.error("no *.machine files under '" + dir + "'");
    return paths;
}

MachineConfig
MachineConfig::fromFile(const std::string &path)
{
    MachineFile mf;
    Diagnostics diags(path);
    if (!loadMachineFile(path, mf, diags))
        diags.throwIfErrors();
    return mf.config;
}

} // namespace macs::machine
