#include "pipeline/cache.h"

namespace macs::pipeline {

void
AnalysisCache::touch(Entry &entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lru);
}

void
AnalysisCache::enforceCapacity()
{
    if (capacity_ == 0)
        return;
    while (entries_.size() > capacity_ && !lru_.empty()) {
        const CacheKey victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr && evictionCounter_ == nullptr)
            evictionCounter_ = &metrics_->counter(
                "macs_cache_evictions_total",
                "Analysis-cache entries evicted by the LRU bound");
        if (evictionCounter_ != nullptr)
            evictionCounter_->inc();
    }
}

AnalysisCache::Claim
AnalysisCache::claim(const CacheKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        touch(it->second);
        return {it->second.future, nullptr};
    }
    auto promise = std::make_shared<std::promise<Value>>();
    std::shared_future<Value> future = promise->get_future().share();
    lru_.push_front(key);
    entries_.emplace(key, Entry{future, lru_.begin()});
    misses_.fetch_add(1, std::memory_order_relaxed);
    enforceCapacity();
    return {std::move(future), std::move(promise)};
}

bool
AnalysisCache::seed(const CacheKey &key, Value value)
{
    std::promise<Value> ready;
    ready.set_value(std::move(value));
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.find(key) != entries_.end())
        return false;
    lru_.push_front(key);
    entries_.emplace(key,
                     Entry{ready.get_future().share(), lru_.begin()});
    enforceCapacity();
    return true;
}

void
AnalysisCache::setCapacity(size_t capacity)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    enforceCapacity();
}

size_t
AnalysisCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void
AnalysisCache::attachMetrics(obs::Registry *registry)
{
    std::lock_guard<std::mutex> lock(mu_);
    metrics_ = registry;
    evictionCounter_ = nullptr;
}

size_t
AnalysisCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
AnalysisCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    lru_.clear();
    hits_.store(0);
    misses_.store(0);
    evictions_.store(0);
}

} // namespace macs::pipeline
