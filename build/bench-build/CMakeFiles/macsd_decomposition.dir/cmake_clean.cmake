file(REMOVE_RECURSE
  "../bench/macsd_decomposition"
  "../bench/macsd_decomposition.pdb"
  "CMakeFiles/macsd_decomposition.dir/macsd_decomposition.cc.o"
  "CMakeFiles/macsd_decomposition.dir/macsd_decomposition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/macsd_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
