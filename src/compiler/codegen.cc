#include "compiler/codegen.h"

#include "compiler/scheduler.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <map>
#include <set>

#include "macs/workload.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::compiler {

using isa::Instruction;
using isa::MemRef;
using isa::Opcode;
using isa::Reg;

namespace {

/** Identity of an array reference after stride normalization. */
struct RefKey
{
    std::string name;
    long strideWords; ///< coef * loop stride (words per iteration)
    long offset;      ///< element offset at iteration 0

    auto operator<=>(const RefKey &) const = default;
};

/** A value handle returned by expression emission. */
struct Value
{
    Reg reg;
    bool temp = false; ///< caller frees after use (vector regs only)
};

class CodeGenerator
{
  public:
    CodeGenerator(const Loop &loop, const CompileOptions &opt)
        : loop_(loop), opt_(opt)
    {
    }

    CompileResult
    run()
    {
        CompileResult res;
        res.analysis = analyzeSource(loop_);
        if (opt_.vectorize && !res.analysis.vectorizable)
            fatal("loop is not vectorizable: ", res.analysis.reason);
        if (opt_.tripCount <= 0)
            fatal("tripCount must be positive");
        if (opt_.unroll < 1)
            fatal("unroll factor must be >= 1");
        if (opt_.vectorize && opt_.unroll != 1)
            fatal("unrolling applies to scalar-mode compilation only");
        if (!opt_.vectorize && opt_.tripCount % opt_.unroll != 0)
            fatal("tripCount ", opt_.tripCount,
                  " is not a multiple of the unroll factor ",
                  opt_.unroll);

        collectStreams();
        declareData();
        allocateScalarRegs(res.analysis);
        emitPreamble();
        size_t body_begin = prog_.size();
        prog_.label("L1");
        if (opt_.vectorize)
            emitLoop();
        else
            emitScalarModeLoop();
        size_t body_end = prog_.size();
        emitPostamble();
        prog_.validate();
        checkExtents();

        res.program = std::move(prog_);
        res.macCounts = model::countAssembly(
            {res.program.instrs().data() + body_begin,
             body_end - body_begin});
        res.scalarReg = scalarRegOf_;
        res.inLoopScalars.assign(inLoopScalars_.begin(),
                                 inLoopScalars_.end());
        return res;
    }

  private:
    // ---- stream and register planning ----------------------------------

    void
    collectRefs(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Array: {
            RefKey key{e.name, e.coef * loop_.stride, e.offset};
            refs_.insert(key);
            ++usesLeft_[key];
            return;
          }
          case Expr::Kind::Scalar:
            scalarNames_.insert(e.name);
            return;
          case Expr::Kind::Number:
            return;
          default:
            if (e.lhs)
                collectRefs(*e.lhs);
            if (e.rhs)
                collectRefs(*e.rhs);
            return;
        }
    }

    void
    collectStreams()
    {
        for (const auto &s : loop_.stmts) {
            collectRefs(*s.rhs);
            if (s.arrayDst)
                refs_.insert({s.dstName, s.dstCoef * loop_.stride,
                              s.dstOffset});
        }
        // Group by words-per-iteration stride; assign address regs.
        std::set<long> strides;
        for (const auto &r : refs_)
            strides.insert(r.strideWords);
        // a0 is the strip counter and a5 the unit-stride base; the
        // rest of the address registers serve as bases and stride
        // values for non-unit streams.
        std::deque<int> pool = {1, 2, 3, 4, 6, 7};
        for (long s : strides) {
            if (s == 1) {
                aregOfStride_[s] = 5;
                continue;
            }
            if (pool.size() < 2)
                fatal("too many distinct access strides (", strides.size(),
                      "); address registers exhausted");
            aregOfStride_[s] = pool.front();
            pool.pop_front();
            if (opt_.vectorize) {
                strideReg_[s] = pool.front();
                pool.pop_front();
            }
        }
    }

    void
    declareData()
    {
        for (const auto &a : opt_.arrays)
            prog_.defineData(a.name, a.words);
        for (const auto &r : refs_)
            if (!prog_.hasDataSymbol(r.name))
                fatal("array '", r.name, "' used but not declared");
        // One memory cell per scalar (initial values are written by the
        // harness before simulation; reductions are stored back).
        for (const auto &name : scalarNames_)
            prog_.defineData(cellName(name), 1);
        for (const auto &s : loop_.stmts)
            if (!s.arrayDst && !prog_.hasDataSymbol(cellName(s.dstName)))
                prog_.defineData(cellName(s.dstName), 1);
    }

    static std::string
    cellName(const std::string &scalar)
    {
        return "scalar_" + scalar;
    }

    void
    allocateScalarRegs(const SourceAnalysis &analysis)
    {
        // s0 is the strip counter. Strides and reduction accumulators
        // must live in registers; broadcast scalars take what is left.
        int budget = std::min(opt_.scalarRegBudget, isa::kNumScalarRegs);
        // Scalar-mode compilation needs s registers as expression
        // temporaries; keep at least four free.
        if (!opt_.vectorize)
            budget = std::min(budget, isa::kNumScalarRegs - 4);
        int next = 0;
        auto take = [&](const std::string &what) {
            if (next >= budget)
                fatal("scalar register budget exhausted allocating ",
                      what);
            return next++;
        };
        for (const auto &name : analysis.reductionScalars)
            scalarRegOf_[name] = take("reduction accumulators");

        std::vector<std::string> broadcast = analysis.broadcastScalars;
        for (const auto &name : broadcast) {
            if (next < budget) {
                scalarRegOf_[name] = next++;
            } else {
                inLoopScalars_.insert(name);
            }
        }
        // Scratch registers for in-loop scalar loads.
        for (int r = next; r < budget; ++r)
            scratchRegs_.push_back(r);
        if (!inLoopScalars_.empty() && scratchRegs_.empty()) {
            // Steal the last *assigned* broadcast register as scratch;
            // its scalar joins the in-loop set.
            auto victim = broadcast.rend();
            for (auto it = broadcast.rbegin(); it != broadcast.rend();
                 ++it) {
                if (scalarRegOf_.count(*it)) {
                    victim = it;
                    break;
                }
            }
            if (victim == broadcast.rend())
                fatal("no scalar register available as scratch for "
                      "in-loop scalar loads");
            scratchRegs_.push_back(scalarRegOf_.at(*victim));
            inLoopScalars_.insert(*victim);
            scalarRegOf_.erase(*victim);
        }
    }

    // ---- emission -------------------------------------------------------

    void
    emitPreamble()
    {
        for (auto &[name, reg] : scalarRegOf_)
            prog_.append(isa::makeSLoad(MemRef{cellName(name), 0,
                                               isa::noreg()},
                                        isa::sreg(reg)));
        for (auto &[stride, reg] : strideReg_)
            prog_.append(isa::makeMovImm(stride, isa::areg(reg)));
        prog_.append(isa::makeMovImm(opt_.tripCount, isa::areg(0)));
        for (auto &[stride, areg] : aregOfStride_) {
            (void)stride;
            prog_.append(isa::makeMovImm(0, isa::areg(areg)));
        }
    }

    void
    emitLoop()
    {
        prog_.append(isa::makeMov(isa::areg(0), isa::vlreg()));
        size_t compute_begin = prog_.size();
        for (const auto &s : loop_.stmts)
            emitStmt(s);
        if (opt_.schedule) {
            auto &instrs = prog_.instrs();
            std::span<const isa::Instruction> region{
                instrs.data() + compute_begin,
                instrs.size() - compute_begin};
            auto reordered =
                scheduleBody(region, machine::ChainingConfig{});
            std::copy(reordered.begin(), reordered.end(),
                      instrs.begin() +
                          static_cast<long>(compute_begin));
        }
        // Clear per-iteration value caches: the compiler carries no
        // vector values across iterations.
        cse_.clear();
        pinned_.clear();
        freeV_ = {0, 1, 2, 3, 4, 5, 6, 7};

        for (auto &[stride, areg] : aregOfStride_)
            prog_.append(isa::makeSAddImm(8 * stride * opt_.vlMax,
                                          isa::areg(areg)));
        prog_.append(isa::makeSSubImm(opt_.vlMax, isa::areg(0)));
        prog_.append(isa::makeCmpImm(Opcode::SLt, 0, isa::areg(0)));
        prog_.append(isa::makeBranch(Opcode::BrT, "L1"));
    }

    void
    emitPostamble()
    {
        for (const auto &s : loop_.stmts) {
            if (!s.arrayDst) {
                auto it = scalarRegOf_.find(s.dstName);
                MACS_ASSERT(it != scalarRegOf_.end(),
                            "reduction scalar not in a register");
                prog_.append(isa::makeSStore(
                    isa::sreg(it->second),
                    MemRef{cellName(s.dstName), 0, isa::noreg()}));
            }
        }
    }

    void
    emitStmt(const Stmt &s)
    {
        if (s.arrayDst) {
            Value v = emitExpr(*s.rhs);
            if (!v.reg.isVector())
                fatal("storing a loop-invariant scalar expression is "
                      "not supported");
            RefKey key{s.dstName, s.dstCoef * loop_.stride, s.dstOffset};
            emitMemOp(false, key, v.reg);
            // The store may alias any other cached reference into the
            // same array (e.g. dd(k) overlapping dd(2k+5)): those
            // cached values are now stale and must be reloaded.
            for (auto it = cse_.begin(); it != cse_.end();) {
                if (it->first.name == key.name && !(it->first == key)) {
                    int idx = it->second.index;
                    it = cse_.erase(it);
                    // The register may back another cached reference
                    // (store forwarding shares registers): only free
                    // it when the last alias is gone.
                    bool still_used = std::any_of(
                        cse_.begin(), cse_.end(), [idx](const auto &kv) {
                            return kv.second.index == idx;
                        });
                    if (!still_used) {
                        pinned_.erase(idx);
                        if (!held_.count(idx))
                            freeV_.push_back(idx);
                    }
                } else {
                    ++it;
                }
            }
            // Forward the stored value to later reads of the same ref.
            cse_[key] = v.reg;
            pinned_.insert(v.reg.index);
            std::erase(freeV_, v.reg.index);
        } else {
            const Expr *term = s.reductionTerm();
            MACS_ASSERT(term, "non-reduction scalar stmt reached codegen");
            Value v = emitExpr(*term);
            Hold hold_v(*this, v);
            if (!v.reg.isVector())
                fatal("reduction of a loop-invariant scalar is not "
                      "supported");
            if (s.rhs->kind == Expr::Kind::Sub) {
                // acc = acc - term: negate, then accumulate.
                Reg nv = allocV({v.reg});
                prog_.append(isa::makeVNeg(v.reg, nv));
                release(v);
                v = {nv, true};
            }
            auto it = scalarRegOf_.find(s.dstName);
            MACS_ASSERT(it != scalarRegOf_.end(),
                        "reduction accumulator not allocated");
            prog_.append(isa::makeVSum(v.reg, isa::sreg(it->second)));
            release(v);
        }
    }

    /** Emit a vector load (want_load) or store for @p key. */
    void
    emitMemOp(bool want_load, const RefKey &key, Reg vreg)
    {
        auto it = aregOfStride_.find(key.strideWords);
        MACS_ASSERT(it != aregOfStride_.end(), "stream has no areg");
        MemRef mem{key.name, key.offset * 8, isa::areg(it->second)};
        if (key.strideWords == 1) {
            prog_.append(want_load ? isa::makeVLoad(mem, vreg)
                                   : isa::makeVStore(vreg, mem));
        } else {
            Reg stride = isa::areg(strideReg_.at(key.strideWords));
            prog_.append(want_load
                             ? isa::makeVLoadStrided(mem, stride, vreg)
                             : isa::makeVStoreStrided(vreg, stride, mem));
        }
    }

    /** Height of an expression tree (scalar/number leaves are 0). */
    static int
    depth(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
          case Expr::Kind::Scalar:
            return 0;
          case Expr::Kind::Array:
            return 1;
          case Expr::Kind::Neg:
            return 1 + depth(*e.lhs);
          default:
            return 1 + std::max(depth(*e.lhs), depth(*e.rhs));
        }
    }

    Value
    emitExpr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Number:
            return {literalReg(e.number), false};
          case Expr::Kind::Scalar:
            return {scalarOperand(e.name), false};
          case Expr::Kind::Array: {
            RefKey key{e.name, e.coef * loop_.stride, e.offset};
            auto &left = usesLeft_[key];
            if (left > 0)
                --left;
            auto hit = cse_.find(key);
            if (hit != cse_.end())
                return {hit->second, false};
            Reg v = allocV();
            emitMemOp(true, key, v);
            cse_[key] = v;
            pinned_.insert(v.index);
            return {v, false};
          }
          case Expr::Kind::Neg: {
            Value a = emitExpr(*e.lhs);
            Hold hold_a(*this, a);
            if (!a.reg.isVector())
                fatal("negation of a loop-invariant scalar is not "
                      "supported");
            Reg dst = allocV({a.reg});
            prog_.append(isa::makeVNeg(a.reg, dst));
            release(a);
            return {dst, true};
          }
          case Expr::Kind::Add:
          case Expr::Kind::Sub:
          case Expr::Kind::Mul:
          case Expr::Kind::Div: {
            // Evaluate the deeper subtree first (Sethi-Ullman order):
            // long dependence chains start early, so the scheduler can
            // overlap them with the remaining loads. This also
            // materializes scalar leaves (depth 0) last, which matters
            // because the rotating scratch registers they occupy would
            // otherwise be clobbered by a nested in-loop scalar load
            // before this operation issues.
            Value a, b;
            if (depth(*e.rhs) > depth(*e.lhs)) {
                b = emitExpr(*e.rhs);
                Hold hold_b0(*this, b);
                a = emitExpr(*e.lhs);
            } else {
                a = emitExpr(*e.lhs);
                Hold hold_a0(*this, a);
                b = emitExpr(*e.rhs);
            }
            Hold hold_a(*this, a);
            Hold hold_b(*this, b);
            if (!a.reg.isVector() && !b.reg.isVector())
                fatal("loop-invariant subexpression '", toString(e),
                      "'; fold it before compiling");
            Opcode op;
            switch (e.kind) {
              case Expr::Kind::Add:
                op = Opcode::VAdd;
                break;
              case Expr::Kind::Sub:
                op = Opcode::VSub;
                break;
              case Expr::Kind::Mul:
                op = Opcode::VMul;
                break;
              default:
                op = Opcode::VDiv;
                break;
            }
            Reg dst = allocV({a.reg, b.reg});
            prog_.append(isa::makeVBinary(op, a.reg, b.reg, dst));
            release(a);
            release(b);
            return {dst, true};
          }
        }
        panic("unreachable expression kind");
    }

    // ---- scalar-mode emission ---------------------------------------------

    /** Free s registers usable as scalar-mode temporaries. */
    std::vector<int>
    scalarTempPool() const
    {
        std::vector<int> pool;
        for (int r = 0; r < isa::kNumScalarRegs; ++r) {
            bool taken = false;
            for (const auto &[name, reg] : scalarRegOf_)
                if (reg == r)
                    taken = true;
            if (!taken)
                pool.push_back(r);
        }
        return pool;
    }

    int
    allocS()
    {
        if (freeS_.empty())
            fatal("scalar-mode expression needs more temporaries than "
                  "the s register file provides");
        // FIFO recycling maximizes register reuse distance, which
        // frees the scalar scheduler from false WAW/WAR chains between
        // unrolled iterations.
        int r = freeS_.front();
        freeS_.erase(freeS_.begin());
        return r;
    }

    void
    releaseS(const Value &v, bool broadcast)
    {
        if (!broadcast && v.temp)
            freeS_.push_back(v.reg.index);
    }

    void
    emitScalarModeLoop()
    {
        freeS_ = scalarTempPool();
        if (freeS_.size() < 2)
            fatal("scalar-mode compilation needs at least two free s "
                  "registers (",
                  scalarRegOf_.size(), " taken by scalars)");
        size_t compute_begin = prog_.size();
        for (int u = 0; u < opt_.unroll; ++u)
            for (const auto &s : loop_.stmts)
                emitScalarStmt(s, u);
        if (opt_.schedule) {
            auto &instrs = prog_.instrs();
            std::span<const isa::Instruction> region{
                instrs.data() + compute_begin,
                instrs.size() - compute_begin};
            auto reordered = scheduleScalarBody(region, machine::ScalarTiming{});
            std::copy(reordered.begin(), reordered.end(),
                      instrs.begin() + static_cast<long>(compute_begin));
        }
        for (auto &[stride, areg] : aregOfStride_)
            prog_.append(isa::makeSAddImm(8 * stride * opt_.unroll,
                                          isa::areg(areg)));
        prog_.append(isa::makeSSubImm(opt_.unroll, isa::areg(0)));
        prog_.append(isa::makeCmpImm(Opcode::SLt, 0, isa::areg(0)));
        prog_.append(isa::makeBranch(Opcode::BrT, "L1"));
    }

    /** Byte offset of @p key at unrolled iteration @p u. */
    static long
    unrolledOffset(const RefKey &key, int u)
    {
        return (key.offset + key.strideWords * u) * 8;
    }

    void
    emitScalarStmt(const Stmt &s, int u)
    {
        if (s.arrayDst) {
            Value v = emitScalarExpr(*s.rhs, u);
            RefKey key{s.dstName, s.dstCoef * loop_.stride, s.dstOffset};
            auto it = aregOfStride_.find(key.strideWords);
            MACS_ASSERT(it != aregOfStride_.end(), "stream has no areg");
            prog_.append(isa::makeSStore(
                v.reg, MemRef{key.name, unrolledOffset(key, u),
                              isa::areg(it->second)}));
            releaseS(v, false);
        } else {
            const Expr *term = s.reductionTerm();
            MACS_ASSERT(term, "non-reduction scalar stmt in scalar mode");
            Value v = emitScalarExpr(*term, u);
            auto it = scalarRegOf_.find(s.dstName);
            MACS_ASSERT(it != scalarRegOf_.end(),
                        "reduction accumulator not allocated");
            Opcode op = s.rhs->kind == Expr::Kind::Sub ? Opcode::SFSub
                                                       : Opcode::SFAdd;
            prog_.append(isa::makeSFBinary(op, isa::sreg(it->second),
                                           v.reg,
                                           isa::sreg(it->second)));
            releaseS(v, false);
        }
    }

    Value
    emitScalarExpr(const Expr &e, int u = 0)
    {
        switch (e.kind) {
          case Expr::Kind::Number: {
            int r = allocS();
            prog_.append(isa::makeMovImm(
                static_cast<int64_t>(std::bit_cast<uint64_t>(e.number)),
                isa::sreg(r)));
            return {isa::sreg(r), true};
          }
          case Expr::Kind::Scalar: {
            auto it = scalarRegOf_.find(e.name);
            if (it != scalarRegOf_.end())
                return {isa::sreg(it->second), false};
            // Spilled scalar: load it into a fresh temporary.
            MACS_ASSERT(inLoopScalars_.count(e.name),
                        "scalar '", e.name, "' unallocated");
            int r = allocS();
            prog_.append(isa::makeSLoad(
                MemRef{cellName(e.name), 0, isa::noreg()}, isa::sreg(r)));
            return {isa::sreg(r), true};
          }
          case Expr::Kind::Array: {
            RefKey key{e.name, e.coef * loop_.stride, e.offset};
            auto it = aregOfStride_.find(key.strideWords);
            MACS_ASSERT(it != aregOfStride_.end(), "stream has no areg");
            int r = allocS();
            prog_.append(isa::makeSLoad(
                MemRef{key.name, unrolledOffset(key, u),
                       isa::areg(it->second)},
                isa::sreg(r)));
            return {isa::sreg(r), true};
          }
          case Expr::Kind::Neg: {
            // 0.0 - x on the ASU.
            Value a = emitScalarExpr(*e.lhs, u);
            int zero = allocS();
            prog_.append(isa::makeMovImm(0, isa::sreg(zero)));
            int r = allocS();
            prog_.append(isa::makeSFBinary(Opcode::SFSub,
                                           isa::sreg(zero), a.reg,
                                           isa::sreg(r)));
            freeS_.push_back(zero);
            releaseS(a, false);
            return {isa::sreg(r), true};
          }
          case Expr::Kind::Add:
          case Expr::Kind::Sub:
          case Expr::Kind::Mul:
          case Expr::Kind::Div: {
            // Sethi-Ullman order: the deeper subtree first, so the
            // chain needs the fewest concurrent temporaries.
            Value a, b;
            if (depth(*e.rhs) > depth(*e.lhs)) {
                b = emitScalarExpr(*e.rhs, u);
                a = emitScalarExpr(*e.lhs, u);
            } else {
                a = emitScalarExpr(*e.lhs, u);
                b = emitScalarExpr(*e.rhs, u);
            }
            Opcode op;
            switch (e.kind) {
              case Expr::Kind::Add:
                op = Opcode::SFAdd;
                break;
              case Expr::Kind::Sub:
                op = Opcode::SFSub;
                break;
              case Expr::Kind::Mul:
                op = Opcode::SFMul;
                break;
              default:
                op = Opcode::SFDiv;
                break;
            }
            int r = allocS();
            prog_.append(
                isa::makeSFBinary(op, a.reg, b.reg, isa::sreg(r)));
            releaseS(a, false);
            releaseS(b, false);
            return {isa::sreg(r), true};
          }
        }
        panic("unreachable expression kind");
    }

    // ---- vector register allocation --------------------------------------

    /** RAII guard marking a value's register as un-evictable. */
    class Hold
    {
      public:
        Hold(CodeGenerator &gen, const Value &v) : gen_(gen)
        {
            if (v.reg.isVector() &&
                gen_.held_.insert(v.reg.index).second)
                idx_ = v.reg.index;
        }
        ~Hold()
        {
            if (idx_ >= 0)
                gen_.held_.erase(idx_);
        }
        Hold(const Hold &) = delete;
        Hold &operator=(const Hold &) = delete;

      private:
        CodeGenerator &gen_;
        int idx_ = -1;
    };

    /**
     * Allocate a vector register, rotating across register pairs and
     * avoiding the pairs of @p avoid (typically the operands of the
     * instruction that will write the result): clustering reads and
     * writes on one pair exhausts its ports and forces chime splits.
     */
    Reg
    allocV(std::initializer_list<Reg> avoid = {})
    {
        while (freeV_.empty())
            evictOne();

        std::set<int> avoid_pairs;
        for (const Reg &r : avoid)
            if (r.isVector())
                avoid_pairs.insert(r.pair());

        auto find = [&](bool respect_avoid) -> int {
            for (int step = 0; step < isa::kNumVectorPairs; ++step) {
                int p = (pairCursor_ + step) % isa::kNumVectorPairs;
                if (respect_avoid && avoid_pairs.count(p))
                    continue;
                for (int idx : freeV_) {
                    if (idx % isa::kNumVectorPairs == p) {
                        pairCursor_ = (p + 1) % isa::kNumVectorPairs;
                        return idx;
                    }
                }
            }
            return -1;
        };

        int idx = find(true);
        if (idx < 0)
            idx = find(false);
        MACS_ASSERT(idx >= 0, "free list inconsistent");
        std::erase(freeV_, idx);
        return isa::vreg(idx);
    }

    void
    release(const Value &v)
    {
        if (v.temp && v.reg.isVector())
            freeV_.push_back(v.reg.index);
    }

    /** Drop one cached (pinned) value to free a register; later reads
     *  of that reference will reload it — extra load, as a real
     *  register-pressured compiler would emit. */
    void
    evictOne()
    {
        // Prefer values with no remaining uses (free to drop); among
        // live values drop the one with the fewest future uses, which
        // minimizes reload traffic.
        auto victim = cse_.end();
        int victim_uses = 0;
        for (auto it = cse_.begin(); it != cse_.end(); ++it) {
            if (held_.count(it->second.index))
                continue;
            int uses = 0;
            auto u = usesLeft_.find(it->first);
            if (u != usesLeft_.end())
                uses = u->second;
            if (victim == cse_.end() || uses < victim_uses) {
                victim = it;
                victim_uses = uses;
            }
            if (uses == 0)
                break;
        }
        if (victim == cse_.end())
            fatal("expression needs more than ", isa::kNumVectorRegs,
                  " live vector registers");
        int idx = victim->second.index;
        pinned_.erase(idx);
        // Drop every cached reference aliasing this register so a
        // later read reloads instead of seeing a clobbered value.
        std::erase_if(cse_, [idx](const auto &kv) {
            return kv.second.index == idx;
        });
        freeV_.push_back(idx);
    }

    // ---- scalar operand handling -----------------------------------------

    Reg
    scalarOperand(const std::string &name)
    {
        auto it = scalarRegOf_.find(name);
        if (it != scalarRegOf_.end())
            return isa::sreg(it->second);
        MACS_ASSERT(inLoopScalars_.count(name),
                    "scalar '", name, "' has no register or cell");
        if (scratchRegs_.empty())
            fatal("no scratch register for in-loop scalar '", name, "'");
        int reg = scratchRegs_[scratchCursor_++ % scratchRegs_.size()];
        prog_.append(isa::makeSLoad(MemRef{cellName(name), 0,
                                           isa::noreg()},
                                    isa::sreg(reg)));
        return isa::sreg(reg);
    }

    Reg
    literalReg(double value)
    {
        // Literals are re-materialized at every use: the scratch
        // registers rotate between literals and in-loop scalar loads,
        // so a cached assignment could be silently clobbered.
        if (scratchRegs_.empty())
            fatal("no scratch register for literal ", value);
        int reg = scratchRegs_[scratchCursor_++ % scratchRegs_.size()];
        prog_.append(isa::makeMovImm(
            static_cast<int64_t>(std::bit_cast<uint64_t>(value)),
            isa::sreg(reg)));
        return isa::sreg(reg);
    }

    // ---- extent checking ---------------------------------------------------

    void
    checkExtents() const
    {
        for (const auto &r : refs_) {
            long first = r.offset;
            long last = r.offset + r.strideWords * (opt_.tripCount - 1);
            long lo = std::min(first, last);
            long hi = std::max(first, last);
            auto spec = std::find_if(
                opt_.arrays.begin(), opt_.arrays.end(),
                [&](const ArraySpec &a) { return a.name == r.name; });
            MACS_ASSERT(spec != opt_.arrays.end(), "undeclared array");
            if (lo < 0 || hi >= static_cast<long>(spec->words))
                fatal("array '", r.name, "' accessed at word ", lo, "..",
                      hi, " but declared with ", spec->words, " words");
        }
    }

    const Loop &loop_;
    const CompileOptions &opt_;
    isa::Program prog_;

    std::set<RefKey> refs_;
    std::set<std::string> scalarNames_;
    std::map<long, int> aregOfStride_;
    std::map<long, int> strideReg_;
    std::map<std::string, int> scalarRegOf_;
    std::set<std::string> inLoopScalars_;
    std::vector<int> scratchRegs_;
    size_t scratchCursor_ = 0;

    std::vector<int> freeV_ = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> freeS_; ///< scalar-mode temporaries
    int pairCursor_ = 0;
    std::map<RefKey, int> usesLeft_;
    std::map<RefKey, Reg> cse_;
    std::set<int> pinned_;
    std::set<int> held_;
};

} // namespace

CompileResult
compile(const Loop &loop, const CompileOptions &options)
{
    CodeGenerator gen(loop, options);
    return gen.run();
}

} // namespace macs::compiler
