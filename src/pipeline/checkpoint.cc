#include "pipeline/checkpoint.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <vector>

#include "support/hash.h"
#include "support/logging.h"
#include "support/strings.h"

namespace macs::pipeline {

namespace {

constexpr std::string_view kMagic = "MACSCKPT1 ";
constexpr std::string_view kFormatTag = "macs-analysis-v1";

/** Strict base-10 uint64 parse (full consumption, no sign). */
bool
parseU64(std::string_view s, uint64_t &out)
{
    if (s.empty() || s.size() >= 24 || s[0] < '0' || s[0] > '9')
        return false;
    char buf[24];
    std::memcpy(buf, s.data(), s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(buf, &end, 10);
    if (end != buf + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

/** Strict base-16 uint64 parse (full consumption, no 0x prefix). */
bool
parseHex64(std::string_view s, uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            return false;
        v = (v << 4) | static_cast<uint64_t>(d);
    }
    out = v;
    return true;
}

void
appendMacsResult(std::string &out, const model::MacsResult &m)
{
    out += format("macsresult %.17g %.17g %.17g %d %zu %zu\n", m.cpl,
                  m.rawCycles, m.cycles, m.vectorLength,
                  m.chimeCycles.size(), m.chimes.size());
    out += "chimecycles";
    for (double c : m.chimeCycles)
        out += format(" %.17g", c);
    out += '\n';
    for (const model::Chime &ch : m.chimes) {
        out += format("chime %d %d %d %d %zu", ch.hasMemoryOp ? 1 : 0,
                      ch.usesPipe[0] ? 1 : 0, ch.usesPipe[1] ? 1 : 0,
                      ch.usesPipe[2] ? 1 : 0, ch.instrs.size());
        for (size_t i : ch.instrs)
            out += format(" %zu", i);
        out += '\n';
    }
}

void
appendRunStats(std::string &out, const sim::RunStats &s)
{
    out += format(
        "runstats %.17g %llu %llu %llu %llu %llu %llu %llu %llu %llu "
        "%llu %.17g %.17g %.17g %.17g %.17g\n",
        s.cycles, static_cast<unsigned long long>(s.instructions),
        static_cast<unsigned long long>(s.vectorInstructions),
        static_cast<unsigned long long>(s.scalarInstructions),
        static_cast<unsigned long long>(s.branchesTaken),
        static_cast<unsigned long long>(s.vectorElements),
        static_cast<unsigned long long>(s.flops),
        static_cast<unsigned long long>(s.memoryElements),
        static_cast<unsigned long long>(s.scalarMemAccesses),
        static_cast<unsigned long long>(s.scalarCacheHits),
        static_cast<unsigned long long>(s.scalarCacheMisses),
        s.refreshStallCycles, s.bankConflictCycles, s.loadStorePipeBusy,
        s.addPipeBusy, s.multiplyPipeBusy);
}

/** Line cursor over the payload text. */
struct LineReader
{
    std::string_view text;
    size_t pos = 0;

    bool next(std::string_view &line)
    {
        if (pos >= text.size())
            return false;
        size_t e = text.find('\n', pos);
        if (e == std::string_view::npos) {
            line = text.substr(pos);
            pos = text.size();
        } else {
            line = text.substr(pos, e - pos);
            pos = e + 1;
        }
        return true;
    }
};

/**
 * Read the next line, check its first field is @p keyword, and return
 * the remaining whitespace-separated fields.
 */
bool
fields(LineReader &r, std::string_view keyword,
       std::vector<std::string> &out)
{
    std::string_view line;
    if (!r.next(line))
        return false;
    out = splitWhitespace(line);
    if (out.empty() || out.front() != keyword)
        return false;
    out.erase(out.begin());
    return true;
}

bool
parseIntField(const std::string &s, int &out)
{
    long v = 0;
    if (!parseInt(s, v))
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
readMacsResult(LineReader &r, model::MacsResult &m)
{
    std::vector<std::string> f;
    if (!fields(r, "macsresult", f) || f.size() != 6)
        return false;
    uint64_t n_cycles = 0, n_chimes = 0;
    if (!parseDouble(f[0], m.cpl) || !parseDouble(f[1], m.rawCycles) ||
        !parseDouble(f[2], m.cycles) ||
        !parseIntField(f[3], m.vectorLength) ||
        !parseU64(f[4], n_cycles) || !parseU64(f[5], n_chimes))
        return false;
    if (n_cycles > 1u << 20 || n_chimes > 1u << 20)
        return false; // implausible; refuse huge allocations
    if (!fields(r, "chimecycles", f) || f.size() != n_cycles)
        return false;
    m.chimeCycles.resize(n_cycles);
    for (size_t i = 0; i < n_cycles; ++i)
        if (!parseDouble(f[i], m.chimeCycles[i]))
            return false;
    m.chimes.resize(n_chimes);
    for (model::Chime &ch : m.chimes) {
        if (!fields(r, "chime", f) || f.size() < 5)
            return false;
        int mem = 0, p0 = 0, p1 = 0, p2 = 0;
        uint64_t n = 0;
        if (!parseIntField(f[0], mem) || !parseIntField(f[1], p0) ||
            !parseIntField(f[2], p1) || !parseIntField(f[3], p2) ||
            !parseU64(f[4], n) || f.size() != 5 + n)
            return false;
        ch.hasMemoryOp = mem != 0;
        ch.usesPipe[0] = p0 != 0;
        ch.usesPipe[1] = p1 != 0;
        ch.usesPipe[2] = p2 != 0;
        ch.instrs.resize(n);
        for (size_t i = 0; i < n; ++i) {
            uint64_t idx = 0;
            if (!parseU64(f[5 + i], idx))
                return false;
            ch.instrs[i] = static_cast<size_t>(idx);
        }
    }
    return true;
}

bool
readRunStats(LineReader &r, sim::RunStats &s)
{
    std::vector<std::string> f;
    if (!fields(r, "runstats", f) || f.size() != 16)
        return false;
    uint64_t u[10];
    for (size_t i = 0; i < 10; ++i)
        if (!parseU64(f[1 + i], u[i]))
            return false;
    if (!parseDouble(f[0], s.cycles) ||
        !parseDouble(f[11], s.refreshStallCycles) ||
        !parseDouble(f[12], s.bankConflictCycles) ||
        !parseDouble(f[13], s.loadStorePipeBusy) ||
        !parseDouble(f[14], s.addPipeBusy) ||
        !parseDouble(f[15], s.multiplyPipeBusy))
        return false;
    s.instructions = u[0];
    s.vectorInstructions = u[1];
    s.scalarInstructions = u[2];
    s.branchesTaken = u[3];
    s.vectorElements = u[4];
    s.flops = u[5];
    s.memoryElements = u[6];
    s.scalarMemAccesses = u[7];
    s.scalarCacheHits = u[8];
    s.scalarCacheMisses = u[9];
    return true;
}

bool
readCounts(LineReader &r, std::string_view keyword,
           model::WorkloadCounts &c)
{
    std::vector<std::string> f;
    return fields(r, keyword, f) && f.size() == 4 &&
           parseIntField(f[0], c.fAdd) && parseIntField(f[1], c.fMul) &&
           parseIntField(f[2], c.loads) && parseIntField(f[3], c.stores);
}

bool
readBound(LineReader &r, std::string_view keyword, model::PipeBound &b)
{
    std::vector<std::string> f;
    return fields(r, keyword, f) && f.size() == 3 &&
           parseDouble(f[0], b.tF) && parseDouble(f[1], b.tM) &&
           parseDouble(f[2], b.bound);
}

} // namespace

std::string
serializeAnalysis(const model::KernelAnalysis &a)
{
    std::string out;
    out += kFormatTag;
    out += '\n';
    out += "name ";
    out += a.name;
    out += '\n';
    out += format("ma %d %d %d %d\n", a.ma.fAdd, a.ma.fMul, a.ma.loads,
                  a.ma.stores);
    out += format("mac %d %d %d %d\n", a.mac.fAdd, a.mac.fMul,
                  a.mac.loads, a.mac.stores);
    out += format("mabound %.17g %.17g %.17g\n", a.maBound.tF,
                  a.maBound.tM, a.maBound.bound);
    out += format("macbound %.17g %.17g %.17g\n", a.macBound.tF,
                  a.macBound.tM, a.macBound.bound);
    appendMacsResult(out, a.macs);
    appendMacsResult(out, a.macsFOnly);
    appendMacsResult(out, a.macsMOnly);
    out += format("t %.17g %.17g %.17g\n", a.tP, a.tA, a.tX);
    appendRunStats(out, a.fullStats);
    appendRunStats(out, a.aStats);
    appendRunStats(out, a.xStats);
    out += format("meta %d %ld\n", a.sourceFlopsPerPoint, a.points);
    return out;
}

bool
deserializeAnalysis(std::string_view text, model::KernelAnalysis &out)
{
    model::KernelAnalysis a;
    LineReader r{text};
    std::string_view line;
    if (!r.next(line) || line != kFormatTag)
        return false;
    if (!r.next(line) || !startsWith(line, "name "))
        return false;
    a.name = std::string(line.substr(5));
    if (!readCounts(r, "ma", a.ma) || !readCounts(r, "mac", a.mac) ||
        !readBound(r, "mabound", a.maBound) ||
        !readBound(r, "macbound", a.macBound) ||
        !readMacsResult(r, a.macs) || !readMacsResult(r, a.macsFOnly) ||
        !readMacsResult(r, a.macsMOnly))
        return false;
    std::vector<std::string> f;
    if (!fields(r, "t", f) || f.size() != 3 ||
        !parseDouble(f[0], a.tP) || !parseDouble(f[1], a.tA) ||
        !parseDouble(f[2], a.tX))
        return false;
    if (!readRunStats(r, a.fullStats) || !readRunStats(r, a.aStats) ||
        !readRunStats(r, a.xStats))
        return false;
    if (!fields(r, "meta", f) || f.size() != 2 ||
        !parseIntField(f[0], a.sourceFlopsPerPoint))
        return false;
    long points = 0;
    if (!parseInt(f[1], points))
        return false;
    a.points = points;
    if (r.pos != text.size())
        return false; // trailing garbage
    out = std::move(a);
    return true;
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     obs::Registry *metrics,
                                     const faults::FaultInjector *faults)
    : path_(std::move(path)), metrics_(metrics), faults_(faults)
{
}

obs::Registry &
CheckpointJournal::registry() const
{
    return metrics_ != nullptr ? *metrics_ : obs::Registry::global();
}

void
CheckpointJournal::count(const char *event, double n) const
{
    registry()
        .counter("macs_checkpoint_records_total",
                 "Checkpoint-journal records by event",
                 obs::Labels{{"event", event}})
        .inc(n);
}

CheckpointJournal::LoadStats
CheckpointJournal::open()
{
    std::lock_guard<std::mutex> lock(mu_);
    loadStats_ = {};

    std::string data;
    {
        std::ifstream in(path_, std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            data = ss.str();
        }
    }

    size_t pos = data.find(kMagic);
    if (!data.empty() && pos != 0) {
        // Leading garbage before the first record (or no record at
        // all): the file is damaged but later records may survive.
        ++loadStats_.corrupt;
    }
    while (pos != std::string::npos) {
        size_t line_end = data.find('\n', pos);
        if (line_end == std::string::npos) {
            // Header cut off mid-line: the torn tail of a killed run.
            ++loadStats_.torn;
            break;
        }
        std::vector<std::string> f = splitWhitespace(
            std::string_view(data).substr(pos, line_end - pos));
        CacheKey key;
        uint64_t len = 0, hash = 0;
        if (f.size() != 6 || !parseHex64(f[1], key.program) ||
            !parseHex64(f[2], key.machine) ||
            !parseHex64(f[3], key.options) || !parseU64(f[4], len) ||
            !parseHex64(f[5], hash)) {
            ++loadStats_.corrupt;
            pos = data.find(kMagic, pos + kMagic.size());
            continue;
        }
        size_t payload_start = line_end + 1;
        if (payload_start + len > data.size()) {
            // The kill happened mid-append: payload runs past EOF.
            ++loadStats_.torn;
            break;
        }
        std::string_view payload =
            std::string_view(data).substr(payload_start, len);
        model::KernelAnalysis analysis;
        if (fnv1a64(payload) != hash ||
            !deserializeAnalysis(payload, analysis)) {
            ++loadStats_.corrupt;
            // Resync on the next record magic; the length field of a
            // corrupt record cannot be trusted, so rescan from the
            // payload start rather than skipping over it.
            pos = data.find(kMagic, payload_start);
            continue;
        }
        entries_[key] =
            std::make_shared<model::KernelAnalysis>(std::move(analysis));
        ++loadStats_.loaded;
        pos = payload_start + len;
        if (pos < data.size() && data[pos] == '\n')
            ++pos;
        pos = data.find(kMagic, pos);
    }

    if (loadStats_.loaded > 0)
        count("loaded", static_cast<double>(loadStats_.loaded));
    if (loadStats_.corrupt > 0) {
        count("corrupt", static_cast<double>(loadStats_.corrupt));
        warn("checkpoint '", path_, "': skipped ", loadStats_.corrupt,
             " corrupt record(s)");
    }
    if (loadStats_.torn > 0) {
        count("torn", static_cast<double>(loadStats_.torn));
        warn("checkpoint '", path_, "': skipped ", loadStats_.torn,
             " torn record(s) at the tail");
    }

    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_)
        throw faults::IoError(detail::concat(
            "cannot open checkpoint journal '", path_,
            "' for append: ", std::strerror(errno)));
    return loadStats_;
}

AnalysisCache::Value
CheckpointJournal::lookup(const CacheKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    return it != entries_.end() ? it->second : nullptr;
}

void
CheckpointJournal::seedInto(AnalysisCache &cache) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[key, value] : entries_)
        cache.seed(key, value);
}

size_t
CheckpointJournal::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
CheckpointJournal::append(const CacheKey &key,
                          const model::KernelAnalysis &analysis)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(key) != 0)
        return; // already journaled (replayed or a duplicate job)

    uint64_t seq = appendSequence_++;
    std::string payload = serializeAnalysis(analysis);
    uint64_t hash = fnv1a64(payload);
    // The cache-corrupt fault site flips the stored hash so the NEXT
    // run's verification must detect and skip this record.
    if (faults_ != nullptr && faults_->shouldCorruptRecord(seq))
        hash ^= 0xdeadbeefULL;

    std::string record = format(
        "%.*s%016llx %016llx %016llx %llu %016llx\n",
        static_cast<int>(kMagic.size()), kMagic.data(),
        static_cast<unsigned long long>(key.program),
        static_cast<unsigned long long>(key.machine),
        static_cast<unsigned long long>(key.options),
        static_cast<unsigned long long>(payload.size()),
        static_cast<unsigned long long>(hash));
    record += payload;
    record += '\n';

    bool failed = false;
    try {
        if (faults_ != nullptr)
            faults_->maybeFailWrite(seq, path_);
        out_.write(record.data(),
                   static_cast<std::streamsize>(record.size()));
        out_.flush();
        if (!out_) {
            out_.clear(); // keep the stream usable for later appends
            failed = true;
        }
    } catch (const faults::IoError &) {
        failed = true;
    }

    if (failed) {
        count("append_failed");
        warn("checkpoint '", path_,
             "': append failed; continuing without checkpoint "
             "coverage for this record");
        return;
    }

    entries_[key] =
        std::make_shared<model::KernelAnalysis>(analysis);
    count("appended");
}

} // namespace macs::pipeline
