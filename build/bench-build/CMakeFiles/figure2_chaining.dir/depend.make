# Empty dependencies file for figure2_chaining.
# This may be replaced when dependencies are built.
