/**
 * @file
 * Throughput of the batch-analysis pipeline on the Table 3/4 job set.
 *
 * The serial baseline models what the bench harnesses did before the
 * pipeline existed: Table 3, Table 4 and Figure 3 each re-analyzed the
 * same ten kernels from scratch (3 x 10 jobs, no sharing). The
 * pipeline runs the same 30-job set with a fixed-size worker pool and
 * the memoization cache, so the ten unique analyses are computed once
 * and every duplicate is a cache hit; extra cores then parallelize the
 * remaining unique work.
 *
 * Printed per worker count: jobs/sec, speedup vs the serial uncached
 * baseline, and cache hit/miss counters. The report rendered from each
 * run is compared byte-for-byte against the 1-worker report to
 * demonstrate scheduling-independent output.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "machine/machine_config.h"
#include "pipeline/pipeline.h"
#include "pipeline/report.h"
#include "support/table.h"

namespace {

using namespace macs;

/** The Table 3 + Table 4 + Figure 3 bound columns: 3x the paper set. */
std::vector<pipeline::BatchJob>
tableJobSet()
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    std::vector<pipeline::BatchJob> jobs;
    for (const char *table : {"table3", "table4", "figure3"}) {
        for (pipeline::BatchJob &job : pipeline::paperJobSet(cfg)) {
            job.configName = table;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** Deterministic report body: configName differs per table, so strip
 *  it by rendering with a uniform label set for the byte comparison. */
std::string
reportBytes(const pipeline::BatchResult &result)
{
    return pipeline::renderBatchJson(result, /*include_timing=*/false);
}

} // namespace

int
main()
{
    using namespace macs;

    std::printf("=== Pipeline throughput: Table 3/4 job set (30 jobs, "
                "10 unique) ===\n\n");
    std::printf("hardware threads: %u\n\n",
                std::thread::hardware_concurrency());

    std::vector<pipeline::BatchJob> jobs = tableJobSet();

    // One untimed warm-up pass before any measurement: pays the page
    // faults, allocator growth, and code warm-up once so they land in
    // no sample — the asserted speedup run below must compare steady
    // states, not cold starts.
    {
        pipeline::BatchEngine warm;
        warm.run(jobs);
    }

    // Median-of-N wall time (bench_util.h): robust against scheduler
    // noise in both tails, unlike best-of-N which reports optimistic
    // outliers. Each repetition uses a fresh engine so the memo cache
    // starts empty and every sample measures the same work.
    constexpr int kReps = 5;
    auto medianRun = [&](size_t workers,
                         bool use_cache) -> pipeline::BatchResult {
        std::vector<pipeline::BatchResult> runs;
        runs.reserve(kReps);
        std::vector<double> walls;
        for (int rep = 0; rep < kReps; ++rep) {
            pipeline::EngineOptions opt;
            opt.workers = workers;
            opt.useCache = use_cache;
            pipeline::BatchEngine engine(opt);
            runs.push_back(engine.run(jobs));
            walls.push_back(runs.back().stats.wallUs);
        }
        double mid = bench::median(walls);
        // Return the run whose wall time is the (lower) median rank.
        size_t pick = 0;
        for (size_t i = 1; i < runs.size(); ++i)
            if (std::abs(runs[i].stats.wallUs - mid) <
                std::abs(runs[pick].stats.wallUs - mid))
                pick = i;
        return std::move(runs[pick]);
    };

    // Serial uncached baseline = the pre-pipeline bench behavior.
    pipeline::BatchResult base = medianRun(1, /*use_cache=*/false);
    double base_wall = base.stats.wallUs;
    std::printf("serial uncached baseline: %s\n\n",
                pipeline::renderStatsLine(base.stats).c_str());

    std::string golden_bytes = reportBytes(base);
    Table t({"workers", "jobs/s", "wall ms", "speedup", "hits",
             "misses", "identical bytes"});
    bool met = false;
    for (size_t workers : {1u, 2u, 4u, 8u}) {
        pipeline::BatchResult r = medianRun(workers, /*use_cache=*/true);
        std::string bytes = reportBytes(r);
        bool same = bytes == golden_bytes;
        double speedup = base_wall / r.stats.wallUs;
        if (workers == 4 && speedup >= 2.5)
            met = true;
        t.addRow({Table::num((long)workers),
                  Table::num(r.stats.jobsPerSec(), 1),
                  Table::num(r.stats.wallUs / 1000.0, 1),
                  Table::num(speedup, 2),
                  Table::num((long)r.stats.cacheHits),
                  Table::num((long)r.stats.cacheMisses),
                  same ? "yes" : "NO"});
        if (!same) {
            std::printf("ERROR: report bytes differ at %zu workers\n",
                        workers);
            return 1;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("4-worker speedup target (>= 2.5x): %s\n\n",
                met ? "met" : "NOT met on this host");

    std::printf(
        "speedup = serial-uncached wall time / pipeline wall time on\n"
        "the same 30-job set. The memoization cache removes the 2/3\n"
        "duplicated work (30 jobs -> 10 computations) independent of\n"
        "core count; worker threads additionally overlap the unique\n"
        "analyses, so machines with >= 4 cores see the full\n"
        "multiplicative effect. Report bytes are identical across\n"
        "worker counts (deterministic result ordering).\n");
    return 0;
}
