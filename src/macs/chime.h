/**
 * @file
 * Chime partitioning (paper section 3.3).
 *
 * A chime is a group of vector instructions that issue in quick
 * succession and execute concurrently (chained where dependent). On the
 * C-240 a chime:
 *  - contains at most one instruction per vector pipe (load/store, add,
 *    multiply);
 *  - may reference each vector register *pair* ({v0,v4}, {v1,v5},
 *    {v2,v6}, {v3,v7}) with at most two reads and one write;
 *  - cannot contain a vector memory access on both sides of a scalar
 *    memory access (the single CPU<->memory port), so scalar loads and
 *    stores split chimes;
 *  - with chaining disabled (Cray-2-like ablation), cannot contain an
 *    instruction that reads a register written earlier in the chime.
 *
 * Scalar non-memory instructions are masked and ignored.
 */

#ifndef MACS_MACS_CHIME_H
#define MACS_MACS_CHIME_H

#include <span>
#include <string>
#include <vector>

#include "isa/instruction.h"
#include "machine/machine_config.h"

namespace macs::model {

/** One chime: indices into the analyzed instruction sequence. */
struct Chime
{
    std::vector<size_t> instrs; ///< indices of member vector instructions
    bool hasMemoryOp = false;   ///< contains a vector load or store
    bool usesPipe[3] = {false, false, false}; ///< LS / Add / Mul
};

/**
 * Partition the loop body @p body into chimes under @p rules.
 * Instruction indices in the result refer to positions in @p body.
 */
std::vector<Chime> partitionChimes(std::span<const isa::Instruction> body,
                                   const machine::ChainingConfig &rules);

/** Render a partition for debugging / the worked example bench. */
std::string renderChimes(std::span<const isa::Instruction> body,
                         const std::vector<Chime> &chimes);

} // namespace macs::model

#endif // MACS_MACS_CHIME_H
