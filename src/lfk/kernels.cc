#include "lfk/kernels.h"

#include "support/logging.h"

namespace macs::lfk {

const std::vector<int> &
lfkIds()
{
    static const std::vector<int> ids = {1, 2, 3, 4, 6, 7, 8, 9, 10, 12};
    return ids;
}

const std::vector<int> &
scalarLfkIds()
{
    static const std::vector<int> ids = {5, 11};
    return ids;
}

Kernel
makeKernel(int id)
{
    switch (id) {
      case 1:
        return makeLfk1();
      case 2:
        return makeLfk2();
      case 3:
        return makeLfk3();
      case 4:
        return makeLfk4();
      case 5:
        return makeLfk5();
      case 6:
        return makeLfk6();
      case 7:
        return makeLfk7();
      case 8:
        return makeLfk8();
      case 9:
        return makeLfk9();
      case 10:
        return makeLfk10();
      case 11:
        return makeLfk11();
      case 12:
        return makeLfk12();
      default:
        fatal("LFK", id, " is not part of the case study workload");
    }
}

std::vector<Kernel>
makeAllKernels()
{
    std::vector<Kernel> out;
    out.reserve(lfkIds().size());
    for (int id : lfkIds())
        out.push_back(makeKernel(id));
    return out;
}

model::KernelCase
toKernelCase(const Kernel &kernel)
{
    model::KernelCase c;
    c.name = kernel.name;
    c.program = kernel.program;
    c.ma = kernel.ma;
    c.sourceFlopsPerPoint = kernel.flopsPerPoint;
    c.points = kernel.points;
    c.setup = kernel.setup;
    return c;
}

const char *
lfk1PaperListing()
{
    // Section 3.5 of the paper, with the data symbols of our LFK1
    // build (byte offsets: ZX(k+10) -> zx+80, ZX(k+11) -> zx+88).
    return R"(.comm x,1024
.comm y,1024
.comm zx,1024
L7:
    mov s0,VL
    ld.l zx+80(a5),v0   ; ZX(k+10)
    mul.d v0,s1,v1      ; R * ZX(k+10)
    ld.l zx+88(a5),v2   ; ZX(k+11)
    mul.d v2,s3,v0      ; T * ZX(k+11)
    add.d v1,v0,v3
    ld.l y(a5),v1       ; Y(k)
    mul.d v1,v3,v2
    add.d v2,s7,v0      ; + Q
    st.l v0,x(a5)       ; X(k)
    add #1024,a5
    sub #128,s0
    lt.w #0,s0
    jbrs.t L7
)";
}

} // namespace macs::lfk
