#include "sim/profile.h"

#include <algorithm>
#include <vector>

#include "support/logging.h"
#include "support/strings.h"
#include "support/table.h"

namespace macs::sim {

const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::None:
        return "none";
      case StallCause::Chain:
        return "chain";
      case StallCause::Interlock:
        return "interlock";
      case StallCause::Tailgate:
        return "tailgate";
      case StallCause::PairPort:
        return "pair-port";
      case StallCause::MemoryPort:
        return "memory-port";
    }
    panic("unreachable stall cause");
}

void
StallProfile::record(size_t pc, const std::string &text, double stall,
                     StallCause cause)
{
    MACS_ASSERT(stall >= 0.0, "negative stall");
    InstrStalls &e = entries_[pc];
    if (e.text.empty())
        e.text = text;
    ++e.executions;
    e.totalStall += stall;
    e.byCause[static_cast<size_t>(cause)] += stall;
}

double
StallProfile::totalStallCycles() const
{
    double total = 0.0;
    for (const auto &[pc, e] : entries_)
        total += e.totalStall;
    return total;
}

std::string
StallProfile::render(size_t max_rows) const
{
    if (entries_.empty())
        return "(no vector instructions profiled)\n";

    std::vector<const std::pair<const size_t, InstrStalls> *> sorted;
    for (const auto &kv : entries_)
        sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) {
                  return a->second.totalStall > b->second.totalStall;
              });

    Table t({"pc", "instruction", "execs", "stall cycles", "per exec",
             "dominant cause"});
    size_t rows = std::min(max_rows, sorted.size());
    for (size_t i = 0; i < rows; ++i) {
        const auto &[pc, e] = *sorted[i];
        size_t dominant = 0;
        for (size_t c = 1; c < kNumStallCauses; ++c)
            if (e.byCause[c] > e.byCause[dominant])
                dominant = c;
        t.addRow({Table::num((long)pc), e.text,
                  Table::num((long)e.executions),
                  Table::num(e.totalStall, 0),
                  Table::num(e.totalStall /
                                 static_cast<double>(e.executions),
                             1),
                  stallCauseName(static_cast<StallCause>(dominant))});
    }
    std::string out = t.render();
    out += format("total stall: %.0f cycles over %zu instructions\n",
                  totalStallCycles(), entries_.size());
    return out;
}

} // namespace macs::sim
