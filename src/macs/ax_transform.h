/**
 * @file
 * A/X code transformation (paper section 3.6).
 *
 * From the compiled code two measurement executables are derived:
 *  - the A-process (access-only) code: all vector floating point
 *    instructions are removed; memory accesses and all scalar code
 *    (address arithmetic, loop control) are unchanged, so control flow
 *    is preserved;
 *  - the X-process (execute-only) code: all vector memory instructions
 *    are removed; FP pipes then operate on whatever the registers hold.
 *
 * The numerical outputs of both are nonsense; only their run times are
 * meaningful: t_A and t_X measure machine performance with one
 * bottleneck class eliminated, and normally
 *     max(t_X, t_A) <= t_p <= t_X + t_A        (equation 18).
 */

#ifndef MACS_MACS_AX_TRANSFORM_H
#define MACS_MACS_AX_TRANSFORM_H

#include "isa/program.h"

namespace macs::model {

/** Which instruction class a transform removes. */
enum class AxVariant
{
    AccessOnly,  ///< A-process: vector FP removed
    ExecuteOnly, ///< X-process: vector memory removed
};

/**
 * Build the A- or X-process version of @p prog. Labels are re-attached
 * to the instruction following the removed ones; data symbols are
 * preserved. The result is validated.
 */
isa::Program makeAxProgram(const isa::Program &prog, AxVariant variant);

/** Convenience wrappers. @{ */
inline isa::Program
makeAProcess(const isa::Program &prog)
{
    return makeAxProgram(prog, AxVariant::AccessOnly);
}

inline isa::Program
makeXProcess(const isa::Program &prog)
{
    return makeAxProgram(prog, AxVariant::ExecuteOnly);
}
/** @} */

} // namespace macs::model

#endif // MACS_MACS_AX_TRANSFORM_H
