/**
 * @file
 * Vectorizing code generator: Loop AST -> strip-mined Convex-style
 * vector assembly in the shape of the paper's LFK1 listing
 * (section 3.5).
 *
 * Generated program layout:
 *
 *   .comm <arrays> / <scalar cells>
 *       ld.w  q,s1            ; preamble: broadcast scalars -> s regs
 *       mov   #<iters>,s0     ; trip count
 *       mov   #0,a5           ; moving base for unit-stride streams
 *   L1: mov   s0,VL           ; VL = min(remaining, 128)
 *       <vector body>         ; loads on demand, post-order arithmetic
 *       add   #1024,a5        ; advance bases by a full strip
 *       sub   #128,s0
 *       lt.w  #0,s0
 *       jbrs.t L1
 *       st.w  s<acc>,<sym>    ; postamble: write back reductions
 *
 * Behaviour mirrors the paper's fc V6.1 observations: identical
 * references are CSEd within an iteration and forwarded from earlier
 * stores, but *no* value is carried across iterations (shifted reuse is
 * reloaded), and when the eight scalar registers are exhausted the
 * remaining broadcast scalars are loaded inside the loop, splitting
 * chimes exactly as the paper describes for LFK8.
 */

#ifndef MACS_COMPILER_CODEGEN_H
#define MACS_COMPILER_CODEGEN_H

#include <map>
#include <string>
#include <vector>

#include "compiler/analysis.h"
#include "compiler/ast.h"
#include "isa/program.h"

namespace macs::compiler {

/** Declared array with its extent in 64-bit words. */
struct ArraySpec
{
    std::string name;
    size_t words = 0;
};

/** Compilation parameters. */
struct CompileOptions
{
    long tripCount = 0;          ///< loop iterations (points)
    std::vector<ArraySpec> arrays;
    int vlMax = 128;             ///< strip length
    /**
     * Scalar registers available for broadcast values (reduction
     * accumulators take priority; the strip counter and strides live
     * in address registers). Lowering this forces in-loop scalar
     * loads (LFK8-style studies).
     */
    int scalarRegBudget = 8;
    /** Run the chime-aware list scheduler over each iteration body. */
    bool schedule = true;
    /**
     * Generate vector code (default). When false the loop is compiled
     * for the scalar unit: one element per iteration through ld.w /
     * scalar FP / st.w — legal for any loop, including the recurrences
     * the vectorizer must reject (LFK 5, 11), and the baseline for
     * vector/scalar speedup studies.
     */
    bool vectorize = true;
    /**
     * Scalar-mode unroll factor: amortizes loop control (the in-order
     * issue unit still stalls at each FP consumer, so latency hiding
     * would additionally need a scalar instruction scheduler).
     * tripCount must be a multiple; vector mode requires 1 (strips are
     * its parallelism).
     */
    int unroll = 1;
};

/** Compiler output. */
struct CompileResult
{
    isa::Program program;
    SourceAnalysis analysis;
    model::WorkloadCounts macCounts;      ///< counted from emitted body
    std::map<std::string, int> scalarReg; ///< scalar name -> s index
    std::vector<std::string> inLoopScalars; ///< loaded inside the loop
};

/**
 * Compile @p loop. fatal() when the loop is not vectorizable, an array
 * is undeclared or too small, or register pressure cannot be met.
 */
CompileResult compile(const Loop &loop, const CompileOptions &options);

} // namespace macs::compiler

#endif // MACS_COMPILER_CODEGEN_H
