/**
 * @file
 * Cycle-coupled multi-CPU runs: P reference-tier Simulators advanced
 * against one SharedMemorySystem, one thread per CPU.
 *
 * This is the simulation tier of the multi-CPU story; the analytic
 * tier (sim/multi_cpu.h's contention fixed point) stays as the cheap
 * cross-check. Here nothing is assumed about contention: every
 * inter-CPU delay emerges from bank reservations in shared_memory.h,
 * and a 1-CPU coupled run is bit-identical to the plain Simulator.
 */

#ifndef MACS_SIM_MP_COUPLED_H
#define MACS_SIM_MP_COUPLED_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "isa/program.h"
#include "machine/machine_config.h"
#include "sim/mp/shared_memory.h"
#include "sim/simulator.h"

namespace macs::sim::mp {

/** One CPU's workload in a coupled run. */
struct CoupledJob
{
    const isa::Program *program = nullptr;
    std::function<void(Simulator &)> setup;
    /**
     * Clock offset of this CPU in global cycles (>= 0): models a
     * process that started later. The independent mix staggers CPUs
     * so identical programs do not run in artificial phase lock.
     */
    double timeSkewCycles = 0.0;
    /** Word-address offset for bank mapping (distinct address space). */
    int64_t addressSkewWords = 0;
    std::string label; ///< for reports ("LFK1", "LFK1[2/4]", ...)
};

/** Options for runCoupled(). */
struct CoupledOptions
{
    bool trace = false;   ///< record per-CPU Timelines
    bool profile = false; ///< record per-CPU StallProfiles
    uint64_t maxInstructions = 100'000'000;
};

/** One CPU's outcome. */
struct CoupledCpuResult
{
    std::string label;
    RunStats stats;        ///< local-clock stats, plain-Simulator shape
    SharedCpuStats shared; ///< contention accounting from the banks
    Timeline timeline;     ///< empty unless options.trace
    StallProfile profile;  ///< empty unless options.profile
};

/** Outcome of a coupled run. */
struct CoupledResult
{
    std::vector<CoupledCpuResult> cpus;
    /**
     * Global cycle the last CPU's port and pipeline drained:
     * max over CPUs of (timeSkew + stats.cycles).
     */
    double makespanCycles = 0.0;
};

/**
 * Run every job to completion, cycle-coupled through the shared
 * banks. Deterministic: results are a pure function of the jobs and
 * config (any thread schedule commits the same global access order).
 * Panics on no jobs, more jobs than config.cpus, or a null program.
 */
CoupledResult runCoupled(const std::vector<CoupledJob> &jobs,
                         const machine::MachineConfig &config,
                         const CoupledOptions &options = {});

} // namespace macs::sim::mp

#endif // MACS_SIM_MP_COUPLED_H
