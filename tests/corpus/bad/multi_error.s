; Deliberately malformed assembly for the diagnostics tests. Each bad
; line is an independent error; the assembler recovers at the next
; line and must report every one of them:
;   .comm missing the word count
;   an unknown mnemonic
;   an immediate where a memory operand is required
.comm aa
frobnicate v0,v1,v2
ld #5,v0
; A valid tail line proves recovery does not lose sync.
mov #0,a1
