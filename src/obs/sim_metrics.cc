#include "obs/sim_metrics.h"

namespace macs::obs {

namespace {

Labels
withLabel(const Labels &base, const std::string &key,
          const std::string &value)
{
    Labels l = base;
    l.set(key, value);
    return l;
}

} // namespace

void
recordRunStats(Registry &reg, const sim::RunStats &st,
               const Labels &labels)
{
    reg.counter("macs_sim_cycles_total",
                "Simulated clock cycles", labels)
        .inc(st.cycles);
    reg.counter("macs_sim_instructions_total",
                "Dynamic instructions by kind",
                withLabel(labels, "kind", "vector"))
        .inc(static_cast<double>(st.vectorInstructions));
    reg.counter("macs_sim_instructions_total",
                "Dynamic instructions by kind",
                withLabel(labels, "kind", "scalar"))
        .inc(static_cast<double>(st.scalarInstructions));

    static const char *const pipes[3] = {"load_store", "add",
                                         "multiply"};
    for (int p = 0; p < 3; ++p)
        reg.counter("macs_sim_pipe_busy_cycles_total",
                    "Cycles each vector pipe streamed elements",
                    withLabel(labels, "pipe", pipes[p]))
            .inc(st.pipeBusy(p));

    reg.counter("macs_sim_refresh_stall_cycles_total",
                "Memory refresh cycles charged to streams", labels)
        .inc(st.refreshStallCycles);
    reg.counter("macs_sim_bank_conflict_cycles_total",
                "Extra cycles from non-unit-stride bank conflicts",
                labels)
        .inc(st.bankConflictCycles);

    reg.counter("macs_sim_vector_elements_total",
                "Vector elements processed", labels)
        .inc(static_cast<double>(st.vectorElements));
    reg.counter("macs_sim_flops_total",
                "Vector floating-point element operations", labels)
        .inc(static_cast<double>(st.flops));
    reg.counter("macs_sim_memory_elements_total",
                "Vector elements loaded or stored", labels)
        .inc(static_cast<double>(st.memoryElements));

    reg.counter("macs_sim_scalar_cache_total",
                "Scalar data cache accesses by outcome",
                withLabel(labels, "event", "hit"))
        .inc(static_cast<double>(st.scalarCacheHits));
    reg.counter("macs_sim_scalar_cache_total",
                "Scalar data cache accesses by outcome",
                withLabel(labels, "event", "miss"))
        .inc(static_cast<double>(st.scalarCacheMisses));
}

void
recordStallProfile(Registry &reg, const sim::StallProfile &profile,
                   const Labels &labels)
{
    // Aggregate per cause across instructions (deterministic: the
    // profile map is keyed by static pc).
    double by_cause[sim::kNumStallCauses] = {};
    for (const auto &[pc, st] : profile.entries())
        for (size_t c = 0; c < sim::kNumStallCauses; ++c)
            by_cause[c] += st.byCause[c];

    for (size_t c = 1; c < sim::kNumStallCauses; ++c) {
        reg.counter("macs_sim_stall_cycles_total",
                    "Vector pipe-entry stall cycles by cause",
                    withLabel(labels, "cause",
                              sim::stallCauseName(
                                  static_cast<sim::StallCause>(c))))
            .inc(by_cause[c]);
    }
}

} // namespace macs::obs
