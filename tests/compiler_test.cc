/**
 * @file
 * Compiler tests: DSL parsing, source analysis (MA counts with perfect
 * index analysis, MAC prediction, vectorizability), and code
 * generation (structure, register budgets, extent checking, emitted
 * MAC counts).
 */

#include <gtest/gtest.h>

#include "compiler/analysis.h"
#include "compiler/codegen.h"
#include "compiler/loop_parser.h"
#include "macs/workload.h"
#include "sim/simulator.h"
#include "support/logging.h"

namespace macs::compiler {
namespace {

// ---------------------------------------------------------------- parser

TEST(LoopParser, SimpleAssignment)
{
    Loop l = parseLoop("DO k\n x(k) = y(k) + 1.5\nEND");
    EXPECT_EQ(l.var, "k");
    EXPECT_EQ(l.stride, 1);
    ASSERT_EQ(l.stmts.size(), 1u);
    EXPECT_TRUE(l.stmts[0].arrayDst);
    EXPECT_EQ(l.stmts[0].dstName, "x");
}

TEST(LoopParser, StrideClause)
{
    Loop l = parseLoop("DO i BY 2\n x(i) = y(i)\nEND");
    EXPECT_EQ(l.stride, 2);
    Loop neg = parseLoop("DO i BY -1\n x(i) = y(i)\nEND");
    EXPECT_EQ(neg.stride, -1);
}

TEST(LoopParser, AffineIndices)
{
    Loop l = parseLoop("DO k\n x(k) = y(k+10) + z(5*k+2) - w(k-3)\nEND");
    const Expr &rhs = *l.stmts[0].rhs;
    // ((y + z) - w)
    ASSERT_EQ(rhs.kind, Expr::Kind::Sub);
    const Expr &w = *rhs.rhs;
    EXPECT_EQ(w.coef, 1);
    EXPECT_EQ(w.offset, -3);
    const Expr &z = *rhs.lhs->rhs;
    EXPECT_EQ(z.coef, 5);
    EXPECT_EQ(z.offset, 2);
}

TEST(LoopParser, PrecedenceMulOverAdd)
{
    Loop l = parseLoop("DO k\n x(k) = a + b*y(k)\nEND");
    EXPECT_EQ(l.stmts[0].rhs->kind, Expr::Kind::Add);
    EXPECT_EQ(l.stmts[0].rhs->rhs->kind, Expr::Kind::Mul);
}

TEST(LoopParser, ParenthesesOverridePrecedence)
{
    Loop l = parseLoop("DO k\n x(k) = (a + b)*y(k)\nEND");
    EXPECT_EQ(l.stmts[0].rhs->kind, Expr::Kind::Mul);
}

TEST(LoopParser, UnaryMinus)
{
    Loop l = parseLoop("DO k\n x(k) = -y(k)\nEND");
    EXPECT_EQ(l.stmts[0].rhs->kind, Expr::Kind::Neg);
}

TEST(LoopParser, MultipleStatements)
{
    Loop l = parseLoop(R"(DO k
 t(k) = a(k) - b(k)
 x(k) = t(k) * c
END)");
    EXPECT_EQ(l.stmts.size(), 2u);
}

TEST(LoopParser, ScalarReduction)
{
    Loop l = parseLoop("DO k\n q = q + z(k)*x(k)\nEND");
    EXPECT_FALSE(l.stmts[0].arrayDst);
    EXPECT_TRUE(l.stmts[0].isReduction());
    ASSERT_NE(l.stmts[0].reductionTerm(), nullptr);
    EXPECT_EQ(l.stmts[0].reductionTerm()->kind, Expr::Kind::Mul);
}

TEST(LoopParser, SubtractionReductionRecognized)
{
    Loop l = parseLoop("DO k\n t = t - a(k)*b(k)\nEND");
    EXPECT_TRUE(l.stmts[0].isReduction());
}

TEST(LoopParser, NonReductionScalarAssignmentNotReduction)
{
    Loop l = parseLoop("DO k\n t = a(k) + b(k)\nEND");
    EXPECT_FALSE(l.stmts[0].isReduction());
}

TEST(LoopParser, ErrorsAreFatal)
{
    EXPECT_THROW(parseLoop("x(k) = 1\nEND"), FatalError); // missing DO
    EXPECT_THROW(parseLoop("DO k\nEND"), FatalError);     // empty body
    EXPECT_THROW(parseLoop("DO k\n x(k) = \nEND"), FatalError);
    EXPECT_THROW(parseLoop("DO k\n x(j) = 1\nEND"), FatalError);
    EXPECT_THROW(parseLoop("DO k\n x(k) = y(k)"), FatalError); // no END
    EXPECT_THROW(parseLoop("DO k BY 0\n x(k) = y(k)\nEND"), FatalError);
}

TEST(LoopParser, ToStringRoundTripsStructure)
{
    Loop l = parseLoop("DO k\n x(k) = q + y(k+1)*r\nEND");
    Loop l2 = parseLoop(l.toString());
    EXPECT_EQ(l.stmts.size(), l2.stmts.size());
    EXPECT_EQ(toString(*l.stmts[0].rhs), toString(*l2.stmts[0].rhs));
}

// ---------------------------------------------------------------- analysis

TEST(Analysis, Lfk1CountsMatchPaperTable2)
{
    Loop l = parseLoop(
        "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_TRUE(a.vectorizable);
    // MA: f_a=2, f_m=3, l=2 (zx stream reused across iterations), s=1.
    EXPECT_EQ(a.ma, (model::WorkloadCounts{2, 3, 2, 1}));
    // MAC: the compiler reloads the shifted zx reference: l'=3.
    EXPECT_EQ(a.mac, (model::WorkloadCounts{2, 3, 3, 1}));
}

TEST(Analysis, Lfk12ShiftedReuse)
{
    Loop l = parseLoop("DO k\n x(k) = y(k+1) - y(k)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_EQ(a.ma.loads, 1);
    EXPECT_EQ(a.mac.loads, 2);
    EXPECT_EQ(a.ma.stores, 1);
    EXPECT_EQ(a.ma.fAdd, 1);
}

TEST(Analysis, StrideTwoParityStreamsAreSeparate)
{
    // LFK2 shape: in a stride-2 loop, x(k-1)/x(k+1) share a stream but
    // x(k) is the other parity.
    Loop l = parseLoop(
        "DO k BY 2\n w(k) = x(k) - v(k)*x(k-1) - v(k+1)*x(k+1)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_EQ(a.ma.loads, 4); // x-even, x-odd, v-even, v-odd
    EXPECT_EQ(a.mac.loads, 5);
}

TEST(Analysis, ReductionAccumulateCountsOneAdd)
{
    Loop l = parseLoop("DO k\n q = q + z(k)*x(k)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_EQ(a.ma, (model::WorkloadCounts{1, 1, 2, 0}));
    EXPECT_EQ(a.reductionScalars.size(), 1u);
}

TEST(Analysis, ForwardedReadNeedsNoLoad)
{
    Loop l = parseLoop(R"(DO k
 t(k) = a(k) - b(k)
 x(k) = t(k) * c
END)");
    SourceAnalysis a = analyzeSource(l);
    // t(k) is written before it is read: forwarded.
    EXPECT_EQ(a.ma.loads, 2);
    EXPECT_EQ(a.mac.loads, 2);
    EXPECT_EQ(a.ma.stores, 2);
}

TEST(Analysis, ReadBeforeWriteStillLoads)
{
    Loop l = parseLoop("DO k\n x(k) = x(k) + y(k)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_EQ(a.ma.loads, 2);
    EXPECT_TRUE(a.vectorizable); // same-element update is fine
}

TEST(Analysis, LoopCarriedRecurrenceNotVectorizable)
{
    Loop l = parseLoop("DO k\n x(k+1) = x(k) * a\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_FALSE(a.vectorizable);
    EXPECT_NE(a.reason.find("loop-carried"), std::string::npos);
}

TEST(Analysis, AntiDependenceIsVectorizable)
{
    Loop l = parseLoop("DO k\n x(k) = x(k+1) * a\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_TRUE(a.vectorizable);
}

TEST(Analysis, NonReductionScalarDstNotVectorizable)
{
    Loop l = parseLoop("DO k\n t = a(k) + b(k)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_FALSE(a.vectorizable);
}

TEST(Analysis, NegCountsOnAddPipe)
{
    Loop l = parseLoop("DO k\n x(k) = -y(k)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_EQ(a.ma.fAdd, 1);
    EXPECT_EQ(a.ma.fMul, 0);
}

TEST(Analysis, BroadcastScalarsCollected)
{
    Loop l = parseLoop("DO k\n x(k) = q + r*y(k)\nEND");
    SourceAnalysis a = analyzeSource(l);
    EXPECT_EQ(a.broadcastScalars.size(), 2u);
}

// ---------------------------------------------------------------- codegen

CompileOptions
basicOptions(long trip = 256)
{
    CompileOptions opt;
    opt.tripCount = trip;
    opt.arrays = {{"x", 512}, {"y", 520}, {"z", 520}, {"zx", 520},
                  {"u", 520}};
    return opt;
}

TEST(Codegen, ProgramValidatesAndHasStripLoop)
{
    CompileResult r = compile(
        parseLoop("DO k\n x(k) = y(k) + z(k)\nEND"), basicOptions());
    r.program.validate();
    EXPECT_TRUE(r.program.hasLabel("L1"));
    auto body = r.program.innerLoop();
    // VL move first, conditional branch last.
    EXPECT_EQ(body.front().op, isa::Opcode::SMov);
    EXPECT_EQ(body.front().dst.cls, isa::RegClass::Vl);
    EXPECT_EQ(body.back().op, isa::Opcode::BrT);
}

TEST(Codegen, EmittedMacCountsMatchPrediction)
{
    CompileResult r = compile(
        parseLoop(
            "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND"),
        basicOptions());
    EXPECT_EQ(r.macCounts, r.analysis.mac);
}

TEST(Codegen, NonVectorizableLoopIsFatal)
{
    EXPECT_THROW(compile(parseLoop("DO k\n x(k+1) = x(k)*a\nEND"),
                         basicOptions()),
                 FatalError);
}

TEST(Codegen, UndeclaredArrayIsFatal)
{
    EXPECT_THROW(
        compile(parseLoop("DO k\n ghost(k) = y(k)\nEND"), basicOptions()),
        FatalError);
}

TEST(Codegen, ExtentOverflowIsFatal)
{
    CompileOptions opt = basicOptions(600); // x declared with 512 words
    EXPECT_THROW(compile(parseLoop("DO k\n x(k) = y(k)\nEND"), opt),
                 FatalError);
}

TEST(Codegen, BadTripCountIsFatal)
{
    CompileOptions opt = basicOptions(0);
    EXPECT_THROW(compile(parseLoop("DO k\n x(k) = y(k)\nEND"), opt),
                 FatalError);
}

TEST(Codegen, StridedStreamUsesStridedOps)
{
    CompileOptions opt;
    opt.tripCount = 100;
    opt.arrays = {{"x", 128}, {"p", 2600}};
    CompileResult r = compile(
        parseLoop("DO k\n x(k) = p(25*k+3)\nEND"), opt);
    bool has_strided = false;
    for (const auto &in : r.program.instrs())
        if (in.op == isa::Opcode::VLdS)
            has_strided = true;
    EXPECT_TRUE(has_strided);
}

TEST(Codegen, ScalarBudgetOverflowSpillsIntoLoop)
{
    // Ten broadcast scalars exceed the eight s registers.
    CompileOptions opt;
    opt.tripCount = 64;
    opt.arrays = {{"x", 128}, {"y", 128}};
    CompileResult r = compile(
        parseLoop("DO k\n x(k) = c1 + c2*(y(k) + c3*(y(k+1) + "
                  "c4*(y(k+2) + c5*(y(k+3) + c6*(y(k+4) + c7*(y(k+5) + "
                  "c8*(y(k+6) + c9*y(k+7))))))))\nEND"),
        opt);
    EXPECT_FALSE(r.inLoopScalars.empty());
    // The loop body must contain scalar loads.
    int in_loop_scalar_loads = 0;
    for (const auto &in : r.program.innerLoop())
        if (in.op == isa::Opcode::SLd)
            ++in_loop_scalar_loads;
    EXPECT_GT(in_loop_scalar_loads, 0);
}

TEST(Codegen, ReducedBudgetForcesMoreSpills)
{
    CompileOptions full = basicOptions();
    CompileOptions tight = basicOptions();
    tight.scalarRegBudget = 2;
    auto loop_text = "DO k\n x(k) = q + y(k)*(r*zx(k+10) + t*zx(k+11))\nEND";
    CompileResult rf = compile(parseLoop(loop_text), full);
    CompileResult rt = compile(parseLoop(loop_text), tight);
    EXPECT_TRUE(rf.inLoopScalars.empty());
    EXPECT_FALSE(rt.inLoopScalars.empty());
}

TEST(Codegen, ReductionStoresAccumulatorInPostamble)
{
    CompileOptions opt;
    opt.tripCount = 100;
    opt.arrays = {{"x", 128}, {"z", 128}};
    CompileResult r = compile(parseLoop("DO k\n q = q + z(k)*x(k)\nEND"),
                              opt);
    EXPECT_TRUE(r.program.hasDataSymbol("scalar_q"));
    // Postamble (after the loop) writes the accumulator back.
    auto [begin, end] = r.program.innerLoopRange();
    bool store_after_loop = false;
    for (size_t i = end; i < r.program.size(); ++i)
        if (r.program.instrs()[i].op == isa::Opcode::SSt)
            store_after_loop = true;
    EXPECT_TRUE(store_after_loop);
}

TEST(Codegen, CompiledLoopComputesCorrectValues)
{
    CompileOptions opt;
    opt.tripCount = 300; // spans two strips + remainder
    opt.arrays = {{"x", 512}, {"y", 520}};
    CompileResult r = compile(
        parseLoop("DO k\n x(k) = y(k+1) - y(k)\nEND"), opt);

    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator sim(cfg, r.program);
    std::vector<double> y(520);
    for (size_t i = 0; i < y.size(); ++i)
        y[i] = 0.25 * static_cast<double>(i * i % 97);
    sim.memory().fillDoubles("y", y);
    sim.run();
    auto x = sim.memory().readDoubles("x", 300);
    for (int i = 0; i < 300; ++i)
        ASSERT_DOUBLE_EQ(x[i], y[i + 1] - y[i]) << "i=" << i;
}

TEST(Codegen, UnscheduledVariantStillCorrect)
{
    CompileOptions opt;
    opt.tripCount = 150;
    opt.arrays = {{"x", 256}, {"y", 264}};
    opt.schedule = false;
    CompileResult r = compile(
        parseLoop("DO k\n x(k) = y(k+1) - y(k)\nEND"), opt);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator sim(cfg, r.program);
    std::vector<double> y(264, 1.0);
    y[100] = 5.0;
    sim.memory().fillDoubles("y", y);
    sim.run();
    auto x = sim.memory().readDoubles("x", 150);
    EXPECT_DOUBLE_EQ(x[99], 4.0);
    EXPECT_DOUBLE_EQ(x[100], -4.0);
}

TEST(Codegen, DeepExpressionWithinEightRegisters)
{
    // A deep chain that exercises eviction and reload correctness.
    CompileOptions opt;
    opt.tripCount = 64;
    opt.arrays = {{"x", 128}, {"a", 128}, {"b", 128}, {"c", 128},
                  {"d", 128}, {"e", 128}, {"f", 128}, {"g", 128},
                  {"h", 128}};
    CompileResult r = compile(
        parseLoop("DO k\n x(k) = (a(k) + b(k))*(c(k) + d(k)) + "
                  "(e(k) + f(k))*(g(k) + h(k))\nEND"),
        opt);
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::Simulator sim(cfg, r.program);
    for (const char *n : {"a", "b", "c", "d", "e", "f", "g", "h"})
        sim.memory().fillDoubles(n, std::vector<double>(128, 2.0));
    sim.run();
    auto x = sim.memory().readDoubles("x", 64);
    for (int i = 0; i < 64; ++i)
        ASSERT_DOUBLE_EQ(x[i], 32.0);
}

} // namespace
} // namespace macs::compiler
