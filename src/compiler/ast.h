/**
 * @file
 * Abstract syntax for the Fortran-like loop DSL the compiler consumes.
 *
 * A Loop is a counted DO loop over a single induction variable with a
 * list of assignment statements. Array references use affine indices
 * coef*var + offset; a scalar assignment whose right-hand side adds to
 * the same scalar is a sum reduction.
 *
 * Example (LFK1):
 *   DO k = 1, n
 *     X(k) = Q + Y(k)*(R*ZX(k+10) + T*ZX(k+11))
 *   END
 */

#ifndef MACS_COMPILER_AST_H
#define MACS_COMPILER_AST_H

#include <memory>
#include <string>
#include <vector>

namespace macs::compiler {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind
    {
        Number, ///< literal constant
        Scalar, ///< loop-invariant scalar variable
        Array,  ///< array element A(coef*var + offset)
        Add,
        Sub,
        Mul,
        Div,
        Neg,
    };

    Kind kind;
    double number = 0.0;   ///< Number
    std::string name;      ///< Scalar / Array
    long coef = 1;         ///< Array index coefficient on the loop var
    long offset = 0;       ///< Array index offset
    ExprPtr lhs;           ///< unary/binary operand
    ExprPtr rhs;           ///< binary operand

    /** Deep copy. */
    ExprPtr clone() const;
};

/** Builders. @{ */
ExprPtr number(double v);
ExprPtr scalar(std::string name);
ExprPtr array(std::string name, long coef = 1, long offset = 0);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr div(ExprPtr a, ExprPtr b);
ExprPtr neg(ExprPtr a);
/** @} */

/** One assignment statement inside the loop body. */
struct Stmt
{
    /** Destination: array element when `arrayDst`, else scalar. */
    bool arrayDst = true;
    std::string dstName;
    long dstCoef = 1;   ///< array destination index coefficient
    long dstOffset = 0; ///< array destination index offset
    ExprPtr rhs;

    /**
     * True when this is a sum reduction: scalar destination whose rhs
     * is dst + expr or dst - expr (recognized by the analyzer).
     */
    bool isReduction() const;
    /** The reduced expression (rhs with the accumulator stripped);
     *  nullptr when not a reduction. */
    const Expr *reductionTerm() const;
};

/** A counted DO loop. */
struct Loop
{
    std::string var = "k"; ///< induction variable
    long stride = 1;       ///< induction increment per iteration
    std::vector<Stmt> stmts;

    /** Pretty-print the loop body as DSL text. */
    std::string toString() const;
};

/** Render an expression as DSL text (for diagnostics and tests). */
std::string toString(const Expr &e);

} // namespace macs::compiler

#endif // MACS_COMPILER_AST_H
