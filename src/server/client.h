/**
 * @file
 * Minimal in-process HTTP/1.1 client for `macs serve` (docs/
 * SERVER.md): persistent keep-alive connections over net.h with
 * deadline-bounded I/O, Content-Length response framing, and a
 * bounded retry helper that honors Retry-After — the client side of
 * the "no request silently dropped" contract that the server's
 * injected net faults are tested against.
 *
 * Used by tests/server_test.cc, bench/server_throughput.cc, and the
 * `macs http` CLI verb, so the scripts need no external curl.
 */

#ifndef MACS_SERVER_CLIENT_H
#define MACS_SERVER_CLIENT_H

#include <string>
#include <utility>
#include <vector>

namespace macs::server {

/** One parsed response. */
struct ClientResponse
{
    int status = 0;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Value of lower-case header @p name, or nullptr. */
    const std::string *header(const std::string &name) const;
};

class HttpClient
{
  public:
    HttpClient(std::string host, int port, int timeout_ms = 5000);
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Issue one request on the persistent connection (connecting or
     * reconnecting as needed) and parse the response.
     * @retval false on connect/send/receive failure or timeout (the
     *         connection is dropped so the next call reconnects).
     */
    bool request(const std::string &method, const std::string &target,
                 const std::string &body, ClientResponse &out,
                 const std::string &content_type =
                     "application/json");

    /**
     * request(), retried up to @p attempts times on transport
     * failures AND on 503 responses (sleeping @p backoff_ms, doubled
     * per retry and capped at 1 s so the client keeps re-probing
     * through a supervised worker restart, or the server's
     * Retry-After if larger is not desired — the smaller of the two
     * is used so tests stay fast).
     * @retval false when every attempt failed.
     */
    bool requestWithRetry(const std::string &method,
                          const std::string &target,
                          const std::string &body,
                          ClientResponse &out, int attempts = 3,
                          int backoff_ms = 10);

    /** Drop the persistent connection (next request reconnects). */
    void close();

  private:
    bool ensureConnected();
    bool readResponse(ClientResponse &out);

    std::string host_;
    int port_;
    int timeoutMs_;
    int fd_ = -1;
    std::string leftover_; ///< bytes past the previous response
};

} // namespace macs::server

#endif // MACS_SERVER_CLIENT_H
