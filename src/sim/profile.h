/**
 * @file
 * Per-instruction stall attribution: for every static vector
 * instruction, how many cycles it waited beyond its issue, and which
 * constraint bound it — the micro-level counterpart of the paper's
 * macro-level gap analysis ("pinpoint areas where performance is
 * lost", section 5).
 *
 * Causes mirror the simulator's enter-time constraints:
 *   Chain      — waiting for a producer's first element (RAW);
 *   Interlock  — destination busy (WAR/WAW on vector registers);
 *   Tailgate   — the pipe's previous stream plus bubbles;
 *   PairPort   — vector register pair read/write ports exhausted;
 *   MemoryPort — the CPU<->memory port (prior streams, scalar
 *                accesses, or a refresh in progress).
 */

#ifndef MACS_SIM_PROFILE_H
#define MACS_SIM_PROFILE_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace macs::sim {

/** What bound a vector instruction's pipe-entry time. */
enum class StallCause : uint8_t
{
    None = 0,   ///< entered right after issue
    Chain,
    Interlock,
    Tailgate,
    PairPort,
    MemoryPort,
};

/** Number of distinct causes (for array sizing). */
inline constexpr size_t kNumStallCauses =
    static_cast<size_t>(StallCause::MemoryPort) + 1;

/** Human-readable cause name. */
const char *stallCauseName(StallCause cause);

/** Accumulated stalls of one static instruction. */
struct InstrStalls
{
    std::string text;          ///< disassembly
    uint64_t executions = 0;
    double totalStall = 0.0;   ///< cycles between issue+X and entry
    std::array<double, kNumStallCauses> byCause{};
};

/** Whole-run stall profile, keyed by static instruction index. */
class StallProfile
{
  public:
    /** Record one dynamic execution. */
    void record(size_t pc, const std::string &text, double stall,
                StallCause cause);

    const std::map<size_t, InstrStalls> &entries() const
    {
        return entries_;
    }

    bool empty() const { return entries_.empty(); }

    /** Total stall cycles across all instructions. */
    double totalStallCycles() const;

    /**
     * Render a table of the @p max_rows most-stalled instructions
     * with their dominant causes.
     */
    std::string render(size_t max_rows = 16) const;

  private:
    std::map<size_t, InstrStalls> entries_;
};

} // namespace macs::sim

#endif // MACS_SIM_PROFILE_H
