#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/strings.h"

namespace macs::sim {

std::string
Timeline::render(size_t max_events, double cycles_per_char) const
{
    if (events_.empty())
        return "(empty timeline)\n";

    size_t n = std::min(max_events, events_.size());
    double t0 = events_.front().issue;
    double t1 = 0;
    for (size_t i = 0; i < n; ++i)
        t1 = std::max(t1, events_[i].complete);

    size_t label_width = 0;
    for (size_t i = 0; i < n; ++i)
        label_width = std::max(label_width, events_[i].text.size());
    label_width = std::min<size_t>(label_width, 32);

    auto col = [&](double t) {
        return static_cast<size_t>(
            std::max(0.0, std::floor((t - t0) / cycles_per_char)));
    };

    std::ostringstream os;
    os << format("timeline: %.0f..%.0f cycles, %.1f cycles/char\n", t0, t1,
                 cycles_per_char);
    for (size_t i = 0; i < n; ++i) {
        const TimelineEvent &ev = events_[i];
        std::string label = ev.text.substr(0, label_width);
        label.resize(label_width, ' ');

        std::string bar(col(t1) + 1, ' ');
        auto paint = [&](double a, double b, char c) {
            for (size_t j = col(a); j < std::max(col(a) + 1, col(b)); ++j)
                if (j < bar.size() && bar[j] == ' ')
                    bar[j] = c;
        };
        paint(ev.issue, ev.enter, '.');
        paint(ev.enter, ev.streamEnd, '=');
        paint(ev.streamEnd, ev.complete, '>');

        os << label << " |" << bar << "| "
           << format("issue %.0f enter %.0f first %.0f done %.0f",
                     ev.issue, ev.enter, ev.firstResult, ev.complete)
           << '\n';
    }
    return os.str();
}

} // namespace macs::sim
