/**
 * @file
 * Shared helpers for the table/figure benchmark harnesses: per-kernel
 * analyses on the paper machine and the paper's published reference
 * numbers for side-by-side printing.
 */

#ifndef MACS_BENCH_BENCH_UTIL_H
#define MACS_BENCH_BENCH_UTIL_H

#include <map>

#include "lfk/kernels.h"
#include "lfk/paper_reference.h"
#include "macs/hierarchy.h"
#include "machine/machine_config.h"

namespace macs::bench {

using lfk::PaperReference;
using lfk::paperReference;

/** Analyze every kernel once on the paper machine (cached). */
inline const std::map<int, model::KernelAnalysis> &
allAnalyses()
{
    static const std::map<int, model::KernelAnalysis> cache = [] {
        std::map<int, model::KernelAnalysis> out;
        machine::MachineConfig cfg = machine::MachineConfig::convexC240();
        for (int id : lfk::lfkIds()) {
            lfk::Kernel k = lfk::makeKernel(id);
            out.emplace(id,
                        model::analyzeKernel(lfk::toKernelCase(k), cfg));
        }
        return out;
    }();
    return cache;
}

} // namespace macs::bench

#endif // MACS_BENCH_BENCH_UTIL_H
