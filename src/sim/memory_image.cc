#include "sim/memory_image.h"

#include <bit>
#include <cstring>

#include "support/logging.h"

namespace macs::sim {

namespace {

// Leave page zero unmapped-ish: symbols start at a nonzero base so that
// accidental zero addresses are caught by the bounds check below.
constexpr uint64_t kBaseAddress = 0x1000;
constexpr uint64_t kAlignBytes = 64;

} // namespace

MemoryImage::MemoryImage(const isa::Program &prog)
{
    uint64_t next = kBaseAddress;
    for (const auto &sym : prog.dataSymbols()) {
        bases_[sym.name] = next;
        next += sym.words * 8;
        next = (next + kAlignBytes - 1) & ~(kAlignBytes - 1);
    }
    words_.assign(next / 8, 0);
}

uint64_t
MemoryImage::symbolBase(const std::string &symbol) const
{
    auto it = bases_.find(symbol);
    if (it == bases_.end())
        fatal("undefined data symbol '", symbol, "'");
    return it->second;
}

uint64_t
MemoryImage::wordIndex(uint64_t addr) const
{
    if (addr % 8 != 0)
        fatal("unaligned 64-bit access at address ", addr);
    uint64_t idx = addr / 8;
    if (idx >= words_.size())
        fatal("out-of-bounds memory access at address ", addr, " (size ",
              sizeBytes(), ")");
    return idx;
}

uint64_t
MemoryImage::readWord(uint64_t addr) const
{
    return words_[wordIndex(addr)];
}

void
MemoryImage::writeWord(uint64_t addr, uint64_t value)
{
    words_[wordIndex(addr)] = value;
}

double
MemoryImage::readDouble(uint64_t addr) const
{
    return std::bit_cast<double>(readWord(addr));
}

void
MemoryImage::writeDouble(uint64_t addr, double value)
{
    writeWord(addr, std::bit_cast<uint64_t>(value));
}

const uint64_t *
MemoryImage::streamWordsSlow(uint64_t addr, int elements,
                             int64_t stride_words) const
{
    // Out of range or unaligned: walk the elements in stream order so
    // the fatal() names exactly the address the per-element
    // interpreter path would have reported first.
    for (int i = 0; i < elements; ++i)
        (void)wordIndex(addr +
                        static_cast<uint64_t>(
                            static_cast<int64_t>(i) * stride_words) *
                            8);
    panic("streamWords: range check disagrees with wordIndex");
}

void
MemoryImage::fillDoubles(const std::string &symbol,
                         const std::vector<double> &values)
{
    if (values.empty())
        return;
    uint64_t base = symbolBase(symbol);
    uint64_t *dst =
        streamWordsMut(base, static_cast<int>(values.size()), 1);
    std::memcpy(dst, values.data(), values.size() * 8);
}

void
MemoryImage::fillWords(const std::string &symbol,
                       const std::vector<int64_t> &values)
{
    uint64_t base = symbolBase(symbol);
    for (size_t i = 0; i < values.size(); ++i)
        writeWord(base + i * 8, static_cast<uint64_t>(values[i]));
}

std::vector<double>
MemoryImage::readDoubles(const std::string &symbol, size_t count,
                         size_t first) const
{
    uint64_t base = symbolBase(symbol);
    std::vector<double> out(count);
    for (size_t i = 0; i < count; ++i)
        out[i] = readDouble(base + (first + i) * 8);
    return out;
}

} // namespace macs::sim
