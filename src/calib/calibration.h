/**
 * @file
 * Calibration-loop framework (paper section 3.2): derive the X/Y/Z/B
 * timing parameters of each vector instruction by running specially
 * constructed loops on the simulator and fitting the results, exactly
 * as the paper did against the real Convex C-240 when its minimum
 * specifications needed confirmation.
 *
 * Method:
 *  - steady state: a counted loop whose body is the instruction under
 *    test unrolled four times with rotating destination registers (so
 *    register interlocks never bind). Per-instruction cycles at vector
 *    length VL approach Z*VL + B; a least-squares fit over several VL
 *    values yields Z (slope) and B (intercept).
 *  - startup: the same program with a single instance of the
 *    instruction; subtracting the empty-program cost and the fitted
 *    Z*VL leaves X + Y.
 */

#ifndef MACS_CALIB_CALIBRATION_H
#define MACS_CALIB_CALIBRATION_H

#include <vector>

#include "isa/opcode.h"
#include "isa/program.h"
#include "machine/machine_config.h"

namespace macs::calib {

/** Fitted timing of one opcode. */
struct CalibrationResult
{
    isa::Opcode op;
    double zFit = 0.0;       ///< fitted cycles per element
    double bFit = 0.0;       ///< fitted inter-instruction bubble
    double startupFit = 0.0; ///< fitted X + Y
    double rss = 0.0;        ///< residual sum of squares of the Z/B fit
};

/** Opcodes covered by the paper's Table 1. */
const std::vector<isa::Opcode> &table1Opcodes();

/** Calibrate one opcode on @p config. */
CalibrationResult calibrate(isa::Opcode op,
                            const machine::MachineConfig &config);

/** Calibrate every Table 1 opcode. */
std::vector<CalibrationResult>
calibrateAll(const machine::MachineConfig &config);

/**
 * Build the steady-state calibration loop for @p op: @p unroll copies
 * per iteration, @p iters iterations, at vector length @p vl.
 * Exposed for tests and for inspecting the generated loops.
 */
isa::Program makeCalibrationLoop(isa::Opcode op, int vl, long iters,
                                 int unroll = 4);

} // namespace macs::calib

#endif // MACS_CALIB_CALIBRATION_H
