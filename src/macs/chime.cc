#include "macs/chime.h"

#include <array>
#include <sstream>

#include "support/logging.h"

namespace macs::model {

namespace {

int
pipeSlot(isa::Pipe p, const machine::ChainingConfig &rules)
{
    switch (p) {
      case isa::Pipe::LoadStore:
        return 0;
      case isa::Pipe::Add:
        return 1;
      case isa::Pipe::Multiply:
        // On a 2-pipe VP the multiply unit shares the FP pipe with
        // add, so both occupy the same slot and exclude each other.
        return rules.fpAddMulShared ? 1 : 2;
      case isa::Pipe::None:
        break;
    }
    panic("pipeSlot on scalar instruction");
}

/** Mutable state of the chime currently being assembled. */
struct Builder
{
    Chime chime;
    std::array<int, isa::kNumVectorPairs> pairReads{};
    std::array<int, isa::kNumVectorPairs> pairWrites{};
    bool sawScalarMem = false; ///< scalar memory access inside this chime
    std::array<bool, isa::kNumVectorRegs> writtenInChime{};

    bool
    empty() const
    {
        return chime.instrs.empty();
    }

    void
    reset()
    {
        chime = Chime{};
        pairReads.fill(0);
        pairWrites.fill(0);
        writtenInChime.fill(false);
        sawScalarMem = false;
    }
};

/** Would adding @p in to the current chime violate a formation rule? */
bool
fits(const Builder &b, const isa::Instruction &in,
     const machine::ChainingConfig &rules)
{
    if (b.empty())
        return true;

    // One instruction per pipe.
    if (b.chime.usesPipe[pipeSlot(in.pipe(), rules)])
        return false;

    // A chime with a vector memory access cannot span a scalar memory
    // access (single memory port).
    if (rules.scalarMemSplitsChimes && in.isVectorMemory() &&
        b.sawScalarMem)
        return false;

    // Vector register pair port limits.
    if (rules.enforcePairLimits) {
        std::array<int, isa::kNumVectorPairs> reads = b.pairReads;
        std::array<int, isa::kNumVectorPairs> writes = b.pairWrites;
        for (const auto &r : in.vectorReads())
            ++reads[r.pair()];
        for (const auto &r : in.vectorWrites())
            ++writes[r.pair()];
        for (int p = 0; p < isa::kNumVectorPairs; ++p) {
            if (reads[p] > rules.maxReadsPerPair ||
                writes[p] > rules.maxWritesPerPair)
                return false;
        }
    }

    // Without chaining, dependent instructions cannot share a chime.
    if (!rules.chainingEnabled) {
        for (const auto &r : in.vectorReads())
            if (b.writtenInChime[r.index])
                return false;
    }

    return true;
}

void
add(Builder &b, size_t idx, const isa::Instruction &in,
    const machine::ChainingConfig &rules)
{
    b.chime.instrs.push_back(idx);
    b.chime.usesPipe[pipeSlot(in.pipe(), rules)] = true;
    if (in.isVectorMemory())
        b.chime.hasMemoryOp = true;
    for (const auto &r : in.vectorReads())
        ++b.pairReads[r.pair()];
    for (const auto &r : in.vectorWrites()) {
        ++b.pairWrites[r.pair()];
        b.writtenInChime[r.index] = true;
    }
}

} // namespace

std::vector<Chime>
partitionChimes(std::span<const isa::Instruction> body,
                const machine::ChainingConfig &rules)
{
    std::vector<Chime> chimes;
    Builder b;
    b.reset();

    auto flush = [&] {
        if (!b.empty())
            chimes.push_back(std::move(b.chime));
        b.reset();
    };

    for (size_t i = 0; i < body.size(); ++i) {
        const isa::Instruction &in = body[i];
        if (in.isScalarMemory()) {
            if (rules.scalarMemSplitsChimes) {
                // Terminate a chime holding a vector memory access just
                // before the scalar access; otherwise only note the
                // barrier so a later vector memory access starts a new
                // chime.
                if (b.chime.hasMemoryOp)
                    flush();
                else
                    b.sawScalarMem = true;
            }
            continue;
        }
        if (!in.isVector())
            continue; // scalar ALU / control: masked

        if (!fits(b, in, rules))
            flush();
        add(b, i, in, rules);
    }
    flush();
    return chimes;
}

std::string
renderChimes(std::span<const isa::Instruction> body,
             const std::vector<Chime> &chimes)
{
    std::ostringstream os;
    for (size_t c = 0; c < chimes.size(); ++c) {
        os << "chime " << (c + 1) << (chimes[c].hasMemoryOp ? " [mem]" : "")
           << ":\n";
        for (size_t idx : chimes[c].instrs) {
            MACS_ASSERT(idx < body.size(), "chime index out of range");
            os << "    " << body[idx].toString() << '\n';
        }
    }
    return os.str();
}

} // namespace macs::model
