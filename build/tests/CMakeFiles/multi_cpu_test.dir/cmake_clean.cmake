file(REMOVE_RECURSE
  "CMakeFiles/multi_cpu_test.dir/multi_cpu_test.cc.o"
  "CMakeFiles/multi_cpu_test.dir/multi_cpu_test.cc.o.d"
  "multi_cpu_test"
  "multi_cpu_test.pdb"
  "multi_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
