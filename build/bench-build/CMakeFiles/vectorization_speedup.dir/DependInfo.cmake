
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/vectorization_speedup.cc" "bench-build/CMakeFiles/vectorization_speedup.dir/vectorization_speedup.cc.o" "gcc" "bench-build/CMakeFiles/vectorization_speedup.dir/vectorization_speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lfk/CMakeFiles/macs_lfk.dir/DependInfo.cmake"
  "/root/repo/build/src/calib/CMakeFiles/macs_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/macs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/macs/CMakeFiles/macs_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/macs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/macs_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/macs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/macs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lfk/CMakeFiles/macs_paperref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
