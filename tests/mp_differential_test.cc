/**
 * @file
 * Cycle-coupled multi-CPU engine tests (docs/MULTICPU.md):
 *
 *  - the degeneracy contract: a 1-CPU mp::runCoupled is bitwise
 *    indistinguishable from the plain reference Simulator — every
 *    RunStats field, Timeline event, and StallProfile entry — for
 *    every LFK kernel on every shipped machine config;
 *  - determinism: repeated 2- and 4-CPU coupled runs commit the same
 *    global access order regardless of thread scheduling, so every
 *    observable is bit-reproducible;
 *  - workload construction: strip-mined chunks tile the iteration
 *    space exactly, hand-assembled kernels refuse to strip;
 *  - contention sanity: coupled CPUs only ever get slower than a CPU
 *    alone, and contended fleets actually collide.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lfk/kernels.h"
#include "lfk/mp_workload.h"
#include "machine/machine_config.h"
#include "machine/machine_file.h"
#include "sim/mp/coupled.h"
#include "sim/simulator.h"
#include "support/logging.h"

#ifndef MACS_MACHINE_DIR
#error "MACS_MACHINE_DIR must be defined by the build"
#endif

namespace macs {
namespace {

uint64_t
bits(double d)
{
    return std::bit_cast<uint64_t>(d);
}

/** Builtin C-240 plus every shipped .machine file, name-tagged. */
std::vector<std::pair<std::string, machine::MachineConfig>>
allMachineConfigs()
{
    std::vector<std::pair<std::string, machine::MachineConfig>> out;
    out.emplace_back("builtin-c240",
                     machine::MachineConfig::convexC240());
    Diagnostics diags;
    for (const std::string &path :
         machine::listMachineFiles(MACS_MACHINE_DIR, diags)) {
        machine::MachineFile mf;
        Diagnostics d;
        if (!machine::loadMachineFile(path, mf, d))
            ADD_FAILURE() << "cannot load " << path << "\n"
                          << d.render();
        else
            out.emplace_back(mf.name, mf.config);
    }
    EXPECT_GE(out.size(), 2u)
        << "no .machine files under " << MACS_MACHINE_DIR;
    return out;
}

/** Everything observable from one simulated CPU. */
struct CpuRun
{
    sim::RunStats stats;
    std::vector<sim::TimelineEvent> events;
    std::map<size_t, sim::InstrStalls> profile;
};

void
expectBitIdentical(const CpuRun &ref, const CpuRun &mp)
{
    const sim::RunStats &a = ref.stats;
    const sim::RunStats &b = mp.stats;
    EXPECT_EQ(bits(a.cycles), bits(b.cycles));
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.vectorInstructions, b.vectorInstructions);
    EXPECT_EQ(a.scalarInstructions, b.scalarInstructions);
    EXPECT_EQ(a.branchesTaken, b.branchesTaken);
    EXPECT_EQ(a.vectorElements, b.vectorElements);
    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.memoryElements, b.memoryElements);
    EXPECT_EQ(a.scalarMemAccesses, b.scalarMemAccesses);
    EXPECT_EQ(a.scalarCacheHits, b.scalarCacheHits);
    EXPECT_EQ(a.scalarCacheMisses, b.scalarCacheMisses);
    EXPECT_EQ(bits(a.refreshStallCycles), bits(b.refreshStallCycles));
    EXPECT_EQ(bits(a.bankConflictCycles), bits(b.bankConflictCycles));
    EXPECT_EQ(bits(a.loadStorePipeBusy), bits(b.loadStorePipeBusy));
    EXPECT_EQ(bits(a.addPipeBusy), bits(b.addPipeBusy));
    EXPECT_EQ(bits(a.multiplyPipeBusy), bits(b.multiplyPipeBusy));
    EXPECT_EQ(bits(a.portBusyCycles), bits(b.portBusyCycles));

    ASSERT_EQ(ref.events.size(), mp.events.size());
    for (size_t i = 0; i < ref.events.size(); ++i) {
        const sim::TimelineEvent &e = ref.events[i];
        const sim::TimelineEvent &f = mp.events[i];
        SCOPED_TRACE("timeline event " + std::to_string(i) + ": " +
                     e.text);
        EXPECT_EQ(e.pc, f.pc);
        EXPECT_EQ(e.text, f.text);
        EXPECT_EQ(bits(e.issue), bits(f.issue));
        EXPECT_EQ(bits(e.enter), bits(f.enter));
        EXPECT_EQ(bits(e.firstResult), bits(f.firstResult));
        EXPECT_EQ(bits(e.streamEnd), bits(f.streamEnd));
        EXPECT_EQ(bits(e.complete), bits(f.complete));
        EXPECT_EQ(e.pipe, f.pipe);
        EXPECT_EQ(bits(e.busy), bits(f.busy));
        EXPECT_EQ(bits(e.stall), bits(f.stall));
        EXPECT_EQ(e.cause, f.cause);
    }

    ASSERT_EQ(ref.profile.size(), mp.profile.size());
    auto fit = mp.profile.begin();
    for (const auto &[pc, is] : ref.profile) {
        SCOPED_TRACE("profile pc " + std::to_string(pc) + ": " +
                     is.text);
        ASSERT_EQ(pc, fit->first);
        const sim::InstrStalls &js = fit->second;
        EXPECT_EQ(is.text, js.text);
        EXPECT_EQ(is.executions, js.executions);
        EXPECT_EQ(bits(is.totalStall), bits(js.totalStall));
        for (size_t c = 0; c < is.byCause.size(); ++c)
            EXPECT_EQ(bits(is.byCause[c]), bits(js.byCause[c]));
        ++fit;
    }
}

CpuRun
runPlain(const lfk::Kernel &k, const machine::MachineConfig &cfg)
{
    sim::SimOptions opt;
    opt.trace = true;
    opt.profile = true;
    opt.tier = sim::SimTier::Reference;
    sim::Simulator s(cfg, k.program, opt);
    k.setup(s);
    CpuRun r;
    r.stats = s.run();
    r.events = s.timeline().events();
    r.profile = s.profile().entries();
    return r;
}

CpuRun
toCpuRun(const sim::mp::CoupledCpuResult &c)
{
    CpuRun r;
    r.stats = c.stats;
    r.events = c.timeline.events();
    r.profile = c.profile.entries();
    return r;
}

std::vector<int>
allLfkIds()
{
    std::vector<int> ids = lfk::lfkIds();
    for (int id : lfk::scalarLfkIds())
        ids.push_back(id);
    return ids;
}

// ------------------------------------------ 1-CPU degeneracy

TEST(MpDifferential, OneCpuBitIdenticalToPlainSimulator)
{
    sim::mp::CoupledOptions mpOpt;
    mpOpt.trace = true;
    mpOpt.profile = true;

    for (const auto &[name, cfg] : allMachineConfigs()) {
        for (int id : allLfkIds()) {
            lfk::Kernel k = lfk::makeKernel(id);
            SCOPED_TRACE("machine " + name + ", " + k.name);

            CpuRun plain = runPlain(k, cfg);

            sim::mp::CoupledJob job;
            job.program = &k.program;
            job.setup = k.setup;
            job.label = k.name;
            sim::mp::CoupledResult res =
                sim::mp::runCoupled({job}, cfg, mpOpt);
            ASSERT_EQ(res.cpus.size(), 1u);

            expectBitIdentical(plain, toCpuRun(res.cpus[0]));
            EXPECT_EQ(bits(res.makespanCycles),
                      bits(plain.stats.cycles));
            // Alone on the banks nothing can collide.
            EXPECT_EQ(res.cpus[0].shared.collisions, 0u);
            EXPECT_EQ(bits(res.cpus[0].shared.foreignDelayCycles),
                      bits(0.0));
        }
    }
}

// --------------------------------------------- determinism

/** Bitwise-comparable image of a whole coupled run. */
std::vector<uint64_t>
imageOf(const sim::mp::CoupledResult &r)
{
    std::vector<uint64_t> img;
    img.push_back(bits(r.makespanCycles));
    for (const sim::mp::CoupledCpuResult &c : r.cpus) {
        img.push_back(bits(c.stats.cycles));
        img.push_back(c.stats.instructions);
        img.push_back(bits(c.stats.refreshStallCycles));
        img.push_back(bits(c.stats.portBusyCycles));
        img.push_back(c.shared.streams);
        img.push_back(c.shared.scalarAccesses);
        img.push_back(c.shared.elements);
        img.push_back(c.shared.collisions);
        img.push_back(bits(c.shared.slotCycles));
        img.push_back(bits(c.shared.foreignDelayCycles));
        img.push_back(bits(c.shared.refreshStallCycles));
        img.push_back(bits(c.shared.portBusyCycles));
        for (const sim::TimelineEvent &e : c.timeline.events()) {
            img.push_back(bits(e.issue));
            img.push_back(bits(e.complete));
            img.push_back(bits(e.stall));
        }
    }
    return img;
}

TEST(MpDifferential, CoupledRunsAreDeterministic)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    sim::mp::CoupledOptions opt;
    opt.trace = true;

    for (int cpus : {2, 4}) {
        for (lfk::MpMix mix :
             {lfk::MpMix::Independent, lfk::MpMix::LockStep}) {
            SCOPED_TRACE(std::string("cpus ") + std::to_string(cpus) +
                         " mix " + lfk::mpMixName(mix));
            lfk::MpWorkload w = lfk::buildMpWorkload(1, mix, cpus);
            std::vector<uint64_t> first, second;
            first = imageOf(sim::mp::runCoupled(w.jobs, cfg, opt));
            second = imageOf(sim::mp::runCoupled(w.jobs, cfg, opt));
            EXPECT_EQ(first, second);
        }
    }
}

TEST(MpDifferential, MixedFleetDeterministic)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    lfk::MpWorkload w = lfk::buildMpMixedWorkload({1, 3, 7, 12});
    std::vector<uint64_t> first =
        imageOf(sim::mp::runCoupled(w.jobs, cfg, {}));
    std::vector<uint64_t> second =
        imageOf(sim::mp::runCoupled(w.jobs, cfg, {}));
    EXPECT_EQ(first, second);
}

// ------------------------------------- workload construction

TEST(MpWorkload, StripChunksTileTheIterationSpace)
{
    lfk::Kernel full = lfk::makeKernel(1);
    for (int cpus : {2, 3, 4}) {
        SCOPED_TRACE("cpus " + std::to_string(cpus));
        lfk::MpWorkload w =
            lfk::buildMpWorkload(1, lfk::MpMix::Strip, cpus);
        ASSERT_EQ(w.kernels.size(), static_cast<size_t>(cpus));
        ASSERT_EQ(w.jobs.size(), static_cast<size_t>(cpus));
        long covered = 0;
        int64_t offset = 0;
        for (int i = 0; i < cpus; ++i) {
            const lfk::Kernel &chunk =
                w.kernels[static_cast<size_t>(i)];
            const sim::mp::CoupledJob &job =
                w.jobs[static_cast<size_t>(i)];
            // Chunk i starts where chunk i-1 ended; no gap, no
            // overlap, no iteration lost.
            EXPECT_EQ(job.addressSkewWords, offset);
            EXPECT_EQ(job.program, &chunk.program);
            EXPECT_TRUE(static_cast<bool>(job.setup));
            covered += chunk.points;
            offset += chunk.points;
        }
        EXPECT_EQ(covered, full.points);
    }
}

TEST(MpWorkload, StripRefusesHandAssembledKernels)
{
    // LFK 2 is hand-assembled: no Kernel::remake, so no mechanical
    // re-tripping — a user-level error, not a crash.
    EXPECT_THROW(lfk::buildMpWorkload(2, lfk::MpMix::Strip, 4),
                 FatalError);
}

TEST(MpWorkload, MixNamesRoundTrip)
{
    for (lfk::MpMix mix : {lfk::MpMix::Independent,
                           lfk::MpMix::LockStep, lfk::MpMix::Strip}) {
        lfk::MpMix parsed;
        ASSERT_TRUE(lfk::parseMpMix(lfk::mpMixName(mix), parsed));
        EXPECT_EQ(parsed, mix);
    }
    lfk::MpMix out;
    EXPECT_FALSE(lfk::parseMpMix("bogus", out));

    sim::WorkloadMix wm;
    EXPECT_TRUE(lfk::toWorkloadMix(lfk::MpMix::Independent, wm));
    EXPECT_EQ(wm, sim::WorkloadMix::Independent);
    EXPECT_TRUE(lfk::toWorkloadMix(lfk::MpMix::LockStep, wm));
    EXPECT_EQ(wm, sim::WorkloadMix::LockStep);
    EXPECT_FALSE(lfk::toWorkloadMix(lfk::MpMix::Strip, wm));
}

// -------------------------------------------- contention sanity

TEST(MpDifferential, ContentionOnlyEverSlowsACpuDown)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    lfk::Kernel alone = lfk::makeKernel(1);
    CpuRun solo = runPlain(alone, cfg);

    for (lfk::MpMix mix :
         {lfk::MpMix::Independent, lfk::MpMix::LockStep}) {
        SCOPED_TRACE(std::string("mix ") + lfk::mpMixName(mix));
        lfk::MpWorkload w = lfk::buildMpWorkload(1, mix, 4);
        sim::mp::CoupledResult res =
            sim::mp::runCoupled(w.jobs, cfg, {});
        ASSERT_EQ(res.cpus.size(), 4u);

        uint64_t collisions = 0;
        for (const sim::mp::CoupledCpuResult &c : res.cpus) {
            // A shared memory can only add delay, never remove it.
            EXPECT_GE(c.stats.cycles, solo.stats.cycles);
            EXPECT_GE(c.shared.foreignDelayCycles, 0.0);
            EXPECT_GE(c.shared.portBusyCycles, 0.0);
            EXPECT_GT(c.shared.elements, 0u);
            collisions += c.shared.collisions;
        }
        // Four copies of a memory-bound kernel on 32 banks must
        // actually collide, or the coupling is vacuous.
        EXPECT_GT(collisions, 0u);
        EXPECT_GE(res.makespanCycles, solo.stats.cycles);
    }
}

TEST(MpDifferential, GuardsBadInput)
{
    machine::MachineConfig cfg = machine::MachineConfig::convexC240();
    EXPECT_THROW(sim::mp::runCoupled({}, cfg, {}), PanicError);

    cfg.cpus = 2;
    lfk::MpWorkload w =
        lfk::buildMpWorkload(1, lfk::MpMix::Independent, 4);
    EXPECT_THROW(sim::mp::runCoupled(w.jobs, cfg, {}), PanicError);

    sim::mp::CoupledJob noProgram;
    EXPECT_THROW(sim::mp::runCoupled({noProgram}, cfg, {}),
                 PanicError);
}

} // namespace
} // namespace macs
