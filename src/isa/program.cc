#include "isa/program.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"

namespace macs::isa {

size_t
Program::append(Instruction instr)
{
    instrs_.push_back(std::move(instr));
    return instrs_.size() - 1;
}

void
Program::label(const std::string &name)
{
    auto [it, inserted] = labels_.emplace(name, instrs_.size());
    if (!inserted)
        fatal("duplicate label '", name, "'");
}

void
Program::defineData(const std::string &name, size_t words)
{
    if (hasDataSymbol(name))
        fatal("duplicate data symbol '", name, "'");
    symbols_.push_back({name, words});
}

size_t
Program::labelIndex(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        fatal("unknown label '", name, "'");
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return labels_.count(name) != 0;
}

bool
Program::hasDataSymbol(const std::string &name) const
{
    return std::any_of(symbols_.begin(), symbols_.end(),
                       [&](const DataSymbol &s) { return s.name == name; });
}

std::pair<size_t, size_t>
Program::innerLoopRange() const
{
    // Scan backwards for a conditional branch whose target precedes it.
    for (size_t i = instrs_.size(); i-- > 0;) {
        const Instruction &in = instrs_[i];
        if ((in.op == Opcode::BrT || in.op == Opcode::BrF) &&
            hasLabel(in.target)) {
            size_t tgt = labelIndex(in.target);
            if (tgt <= i)
                return {tgt, i + 1};
        }
    }
    fatal("program has no backward conditional branch (no inner loop)");
}

std::span<const Instruction>
Program::innerLoop() const
{
    auto [begin, end] = innerLoopRange();
    return {instrs_.data() + begin, end - begin};
}

void
Program::validate() const
{
    for (size_t i = 0; i < instrs_.size(); ++i) {
        const Instruction &in = instrs_[i];
        auto where = [&] {
            return " at instruction " + std::to_string(i) + " (" +
                   in.toString() + ")";
        };

        if (in.isBranch() && !hasLabel(in.target))
            fatal("undefined branch target '", in.target, "'", where());

        bool has_mem = in.op == Opcode::VLd || in.op == Opcode::VLdS ||
                       in.op == Opcode::VSt || in.op == Opcode::VStS ||
                       in.op == Opcode::SLd || in.op == Opcode::SSt;
        if (has_mem) {
            if (!in.mem.symbol.empty() && !hasDataSymbol(in.mem.symbol))
                fatal("undefined data symbol '", in.mem.symbol, "'",
                      where());
            if (in.mem.symbol.empty() && !in.mem.base.valid())
                fatal("memory operand needs a symbol or base register",
                      where());
        }

        switch (in.op) {
          case Opcode::VLd:
          case Opcode::VLdS:
            if (!in.dst.isVector())
                fatal("vector load needs a v destination", where());
            break;
          case Opcode::VSt:
          case Opcode::VStS:
            if (!in.src1.isVector())
                fatal("vector store needs a v source", where());
            break;
          case Opcode::VAdd:
          case Opcode::VSub:
          case Opcode::VMul:
          case Opcode::VDiv:
            if (!in.dst.isVector() ||
                !(in.src1.isVector() || in.src2.isVector()))
                fatal("vector arithmetic needs a v destination and at "
                      "least one v source", where());
            break;
          case Opcode::VNeg:
            if (!in.dst.isVector() || !in.src1.isVector())
                fatal("neg.d needs v source and destination", where());
            break;
          case Opcode::VSum:
            if (!in.dst.isScalar() || !in.src1.isVector())
                fatal("sum.d reduces a v register into an s register",
                      where());
            break;
          default:
            break;
        }
    }
}

std::string
Program::toString() const
{
    // Invert the label map: index -> labels.
    std::map<size_t, std::vector<std::string>> at;
    for (const auto &[name, idx] : labels_)
        at[idx].push_back(name);

    std::ostringstream os;
    for (const auto &sym : symbols_)
        os << ".comm " << sym.name << ',' << sym.words << '\n';
    for (size_t i = 0; i <= instrs_.size(); ++i) {
        auto it = at.find(i);
        if (it != at.end())
            for (const auto &name : it->second)
                os << name << ":\n";
        if (i < instrs_.size())
            os << "    " << instrs_[i].toString() << '\n';
    }
    return os.str();
}

} // namespace macs::isa
