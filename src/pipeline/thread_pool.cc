#include "pipeline/thread_pool.h"

#include <algorithm>

namespace macs::pipeline {

ThreadPool::ThreadPool(size_t workers)
{
    size_t n = std::max<size_t>(1, workers);
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    workReady_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

size_t
ThreadPool::queuedTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

size_t
ThreadPool::inFlight() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return inFlight_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            workReady_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // tasks are noexcept by contract (engine wraps them)
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace macs::pipeline
