# Empty dependencies file for table3_bounds.
# This may be replaced when dependencies are built.
