/**
 * @file
 * The shared 32-bank memory system of a multi-CPU C-240, and the
 * per-CPU port proxies that couple P reference-tier Simulators to it.
 *
 * Model (paper section 4.2): each CPU owns one port into the common
 * interleaved memory. A CPU's own-port behavior — stream entry, stride
 * service rate, the global refresh train — is byte-for-byte the
 * arithmetic of sim::MemoryPort with contention factor 1.0. What the
 * single-CPU model folds into an `alpha` knob emerges here instead:
 * every stream element and scalar access reserves its bank for the
 * bank-busy time, and an element that lands on a bank a *different*
 * CPU holds busy is pushed past that reservation plus an
 * arbitration-restart penalty (MemoryConfig::arbitrationRestartCycles,
 * the paper's conjectured controller-handshake restart). Conflicts
 * within one CPU's own stream are already captured by the closed-form
 * stride rate and are never double-charged.
 *
 * Determinism: accesses from all CPUs are committed in a single global
 * greedy order by (global time, cpu index). Each CPU publishes a
 * monotone horizon — a lower bound on the time of its next port event
 * — and an event at time t commits only once every other unfinished
 * CPU's horizon has passed t (ties broken toward the smaller index).
 * The committed schedule is therefore a pure function of the workloads
 * and independent of thread scheduling: runs are bit-reproducible and
 * TSan-clean (all shared state sits under one mutex).
 *
 * Degeneracy contract: with one CPU no foreign reservation can exist,
 * every coupling term is exactly 0.0, and the identities x + 0.0 == x
 * and x * 1.0 == x make each returned timing bit-identical to the
 * plain MemoryPort's — pinned by tests/mp_differential_test.cc.
 */

#ifndef MACS_SIM_MP_SHARED_MEMORY_H
#define MACS_SIM_MP_SHARED_MEMORY_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "machine/machine_config.h"
#include "sim/memory_port.h"

namespace macs::sim::mp {

/** Per-CPU traffic accounting of one coupled run. */
struct SharedCpuStats
{
    uint64_t streams = 0;        ///< vector streams serviced
    uint64_t scalarAccesses = 0; ///< scalar loads/stores serviced
    uint64_t elements = 0;       ///< vector elements serviced
    uint64_t collisions = 0;     ///< elements pushed by a foreign bank
    double slotCycles = 0.0;     ///< rate*n + scalar slot cycles
    double foreignDelayCycles = 0.0; ///< cycles lost to foreign banks
    double refreshStallCycles = 0.0; ///< refresh cycles charged
    double portBusyCycles = 0.0; ///< total port-occupancy span

    /**
     * Effective time per memory access in cycles: the full port
     * occupancy divided by the access count. One CPU with unit
     * stride sits near 1.0 (the 40 ns peak); the paper's multi-user
     * band of 56-64 ns per access is 1.4-1.6 here.
     */
    double
    perAccessCycles() const
    {
        uint64_t accesses = elements + scalarAccesses;
        return accesses ? portBusyCycles / static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * The shared banks + per-CPU ports. Construct, decorate CPUs with
 * skews, hand each Simulator its port(), run the CPUs on their own
 * threads, and call finish(cpu) as each one completes (mandatory —
 * peers wait on unfinished horizons).
 */
class SharedMemorySystem
{
  public:
    SharedMemorySystem(const machine::MemoryConfig &config, int cpus);

    int cpus() const { return static_cast<int>(cpu_.size()); }

    /**
     * The ExternalMemoryPort to plug into CPU @p cpu's SimOptions.
     * Valid for the lifetime of this system.
     */
    ExternalMemoryPort &port(int cpu);

    /**
     * Offset CPU @p cpu's clock: its local cycle t is global cycle
     * t + @p cycles. Models processes that did not start in the same
     * clock edge (the independent mix); the global refresh train then
     * hits each CPU at a different local phase, as on real hardware.
     * Must be set before the run starts; 0 preserves the single-CPU
     * degeneracy bit-for-bit.
     */
    void setTimeSkewCycles(int cpu, double cycles);

    /**
     * Offset CPU @p cpu's word addresses for bank mapping: models
     * distinct address spaces (independent/lock-step mixes) or a
     * strip chunk's base offset without rewriting the programs. Only
     * the bank residue matters; 0 preserves the degeneracy.
     */
    void setAddressSkewWords(int cpu, int64_t words);

    /**
     * Mark CPU @p cpu done: its horizon becomes infinite so peers
     * stop waiting on it. Must be called exactly once per CPU, on
     * success and on failure alike.
     */
    void finish(int cpu);

    /** Traffic accounting for CPU @p cpu (stable after its finish). */
    SharedCpuStats cpuStats(int cpu) const;

    // ExternalMemoryPort backends (global-time domain internally;
    // called via the per-CPU proxies, which live in cpu-local time).
    StreamTiming serviceStream(int cpu, double earliest, int elements,
                               int64_t stride_words, double rate_floor,
                               uint64_t start_word);
    ScalarAccessTiming serviceScalar(int cpu, double earliest,
                                     uint64_t word);
    double strideRate(int64_t stride_words) const;
    double freeAt(int cpu) const;

  private:
    /** One bank reservation: bank busy over [start, end), by cpu. */
    struct BankWindow
    {
        double start = 0.0;
        double end = 0.0;
        int cpu = 0;
    };

    struct CpuState
    {
        double freeAt = 0.0;  ///< global cycle the port frees
        double horizon = 0.0; ///< lower bound on next port event
        bool finished = false;
        double timeSkew = 0.0;
        int64_t addrSkew = 0;
        /// Refresh-boundary cursor (MemoryPort::advanceRefreshCursor).
        double refreshCursor = 0.0;
        SharedCpuStats stats;
    };

    /** ExternalMemoryPort face of one CPU's port. */
    class CpuPort : public ExternalMemoryPort
    {
      public:
        void
        bind(SharedMemorySystem *system, int cpu)
        {
            system_ = system;
            cpu_ = cpu;
        }
        StreamTiming
        serviceStream(double earliest, int elements,
                      int64_t stride_words, double rate_floor,
                      uint64_t start_word) override
        {
            return system_->serviceStream(cpu_, earliest, elements,
                                          stride_words, rate_floor,
                                          start_word);
        }
        ScalarAccessTiming
        serviceScalar(double earliest, uint64_t word) override
        {
            return system_->serviceScalar(cpu_, earliest, word);
        }
        double
        strideRate(int64_t stride_words) const override
        {
            return system_->strideRate(stride_words);
        }
        double
        freeAt() const override
        {
            return system_->freeAt(cpu_);
        }

      private:
        SharedMemorySystem *system_ = nullptr;
        int cpu_ = 0;
    };

    /** True when CPU @p cpu may commit an event at global time t. */
    bool safeAt(int cpu, double t) const;

    /**
     * Commit one port event of @p cpu at candidate global time @p t
     * on @p bank: wait until every other horizon passes t, push past
     * any covering foreign reservation (plus the arbitration restart)
     * re-waiting after each push, then record this event's own
     * reservation. Returns the committed time (>= t).
     */
    double commitElement(std::unique_lock<std::mutex> &lock, int cpu,
                         double t, int bank);

    /** Latest end among foreign windows covering (bank, t); -1 if none. */
    double foreignBusyEnd(int cpu, int bank, double t) const;

    /** Bank index of a (possibly negative) skewed word address. */
    int bankOf(int64_t word) const;

    /** Drop windows no unfinished CPU can ever query again. */
    void pruneWindows();

    /** MemoryPort::advanceRefreshCursor on a CPU's own cursor. */
    void advanceRefreshCursor(CpuState &c, double x) const;

    /** MemoryPort::refreshStall against a CPU's own cursor. */
    double refreshStall(CpuState &c, double begin, double end) const;

    machine::MemoryConfig config_;
    /// Stride-rate oracle; strideRate() is pure const (thread-safe).
    MemoryPort rateModel_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<CpuState> cpu_;
    std::vector<CpuPort> ports_;
    std::vector<std::vector<BankWindow>> bankWindows_;
};

} // namespace macs::sim::mp

#endif // MACS_SIM_MP_SHARED_MEMORY_H
