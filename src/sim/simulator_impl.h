/**
 * @file
 * Private simulation state shared by the two execution tiers
 * (simulator.cc = reference interpreter, simulator_fast.cc = batched
 * fast path; docs/SIMULATOR.md). Both tiers mutate exactly this state
 * with exactly the same floating-point expressions in the same order —
 * that is the bit-exactness contract the differential tests pin.
 *
 * Internal header: include only from src/sim/ translation units.
 */

#ifndef MACS_SIM_SIMULATOR_IMPL_H
#define MACS_SIM_SIMULATOR_IMPL_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "support/logging.h"

namespace macs::sim {

/**
 * Predecoded program for the fast tier (simulator_fast.cc): timing
 * parameters, pipe and pair-port usage, resolved branch targets and
 * symbol bases, operand ready-time pointers into Impl, and the
 * bank-busy stride-rate schedule — everything resolvable without
 * register values, computed once at Simulator construction.
 */
struct FastProgram;

/**
 * Index of a vector pipe for array storage. On a 2-pipe VP
 * (fpAddMulShared) multiplies execute in the add pipe's slot, so the
 * two FP units serialize against each other exactly like the chime
 * partitioner models.
 */
inline int
pipeIndex(isa::Pipe p, const machine::ChainingConfig &rules)
{
    switch (p) {
      case isa::Pipe::LoadStore:
        return 0;
      case isa::Pipe::Add:
        return 1;
      case isa::Pipe::Multiply:
        return rules.fpAddMulShared ? 1 : 2;
      case isa::Pipe::None:
        break;
    }
    panic("pipeIndex on non-vector pipe");
}

/** Private simulation state. */
struct Simulator::Impl
{
    // ---- timing state -------------------------------------------------
    struct VRegTiming
    {
        double enter = 0.0;       ///< producer's first element entry
        double firstResult = 0.0;
        double streamEnd = 0.0;
        double complete = 0.0;
        double rate = 1.0;
        // WAR interlock state: a writer may overwrite element i once
        // every reader has consumed it. With writer rate >= reader
        // rate it suffices to start no earlier than the readers
        // started (the write of element i lands Y cycles after the
        // reader's pipe has already ingested it); a writer faster
        // than a reader must wait for the reader's stream to end.
        double lastReadEnter = 0.0;
        double lastReadStreamEnd = 0.0;
        double minReadRate = 1e18;
        bool hasActiveReaders(double t) const
        {
            return lastReadStreamEnd > t;
        }
    };

    struct PipeState
    {
        double lastStreamEnd = -1e18; ///< tailgate reference
        double issueGate = 0.0; ///< enter time of last dispatched instr
        /**
         * Bubbles of vector instructions dispatched on *other* pipes
         * since this pipe's last instruction. They accumulate on the
         * shared dispatch path, so a pipe's next stream starts
         * lastStreamEnd + pendingBubble + B_self later — in steady
         * state exactly the paper's chime cost Z*VL + sum of member
         * bubbles (equation 13).
         */
        double pendingBubble = 0.0;
    };

    struct ActiveVector
    {
        double enter = 0.0;
        double streamEnd = 0.0;
        std::array<int, isa::kNumVectorPairs> pairReads{};
        std::array<int, isa::kNumVectorPairs> pairWrites{};
    };

    double issueFree = 0.0;
    double flagReadyAt = 0.0;
    double vlReadyAt = 0.0;
    std::array<PipeState, 3> pipes;
    std::array<VRegTiming, isa::kNumVectorRegs> vtime;
    std::array<double, isa::kNumScalarRegs> sReady{};
    std::array<double, isa::kNumAddressRegs> aReady{};
    double maxTime = 0.0;
    std::vector<ActiveVector> active;

    /** Fast-tier predecode, built once in the Simulator constructor
     *  (null for the reference tier). Holds pointers into this Impl,
     *  so it is owned per-simulator and never shared. */
    std::shared_ptr<const FastProgram> fastProg;

    // ---- functional state ---------------------------------------------
    std::array<uint64_t, isa::kNumScalarRegs> sRaw{};
    std::array<int64_t, isa::kNumAddressRegs> aVal{};
    // Storage allows what-if machines with registers longer than the
    // C-240's architectural 128 elements (strip-length sweeps).
    static constexpr int kMaxSimVl = 1024;
    std::array<std::array<double, kMaxSimVl>, isa::kNumVectorRegs>
        vdata{};
    int vl = isa::kMaxVectorLength;
    bool flag = false;

    // ---- ASU scalar data cache (direct mapped, timing only) -----------
    std::vector<int64_t> cacheTags; ///< -1 = invalid; else line tag

    void
    initCache(const machine::ScalarCacheConfig &cfg)
    {
        cacheTags.assign(cfg.enabled ? cfg.lines : 0, -1);
    }

    /** True when the line holding byte address @p addr is cached;
     *  allocates it either way (look-aside fill on miss). */
    bool
    cacheAccess(const machine::ScalarCacheConfig &cfg, uint64_t addr)
    {
        if (!cfg.enabled)
            return false;
        int64_t line = static_cast<int64_t>(addr) /
                       (8 * cfg.lineWords);
        size_t set = static_cast<size_t>(line % cfg.lines);
        bool hit = cacheTags[set] == line;
        cacheTags[set] = line;
        return hit;
    }

    /** Invalidate every line intersecting [begin, end) bytes. */
    void
    invalidateCacheRange(const machine::ScalarCacheConfig &cfg,
                         uint64_t begin, uint64_t end)
    {
        if (!cfg.enabled || begin >= end)
            return;
        int64_t line_bytes = 8 * cfg.lineWords;
        int64_t first = static_cast<int64_t>(begin) / line_bytes;
        int64_t last = static_cast<int64_t>(end - 1) / line_bytes;
        if (last - first + 1 >= static_cast<int64_t>(cacheTags.size())) {
            std::fill(cacheTags.begin(), cacheTags.end(), -1);
            return;
        }
        for (int64_t line = first; line <= last; ++line) {
            size_t set = static_cast<size_t>(line %
                                             (int64_t)cacheTags.size());
            if (cacheTags[set] == line)
                cacheTags[set] = -1;
        }
    }

    void
    bump(double t)
    {
        maxTime = std::max(maxTime, t);
    }
};

} // namespace macs::sim

#endif // MACS_SIM_SIMULATOR_IMPL_H
