# Empty compiler generated dependencies file for vectorization_speedup.
# This may be replaced when dependencies are built.
