# Empty dependencies file for report_md_test.
# This may be replaced when dependencies are built.
